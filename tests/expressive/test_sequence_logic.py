"""Tests for Theorem 6.4: sequence predicates embed faithfully."""

from itertools import product

import pytest

from repro.core.alphabet import BINARY
from repro.core.semantics import check_string_formula
from repro.core.syntax import is_unidirectional
from repro.errors import ReproError
from repro.expressive.regular import RChar, RStar
from repro.expressive.sequence_logic import (
    AtomEncoding,
    SequencePredicate,
    alternation_predicate,
    concatenation_predicate,
    predicate_to_formula,
    shuffle_predicate,
)

ATOMS = ("Peter", "Paul", "Mary")


def sequences(max_len: int):
    out = []
    for length in range(max_len + 1):
        out.extend(product(ATOMS[:2], repeat=length))
    return out


class TestDirectSemantics:
    def test_concatenation(self):
        predicate = concatenation_predicate()
        assert predicate.holds(
            (("Peter",), ("Paul", "Mary")), ("Peter", "Paul", "Mary")
        )
        assert not predicate.holds(
            (("Peter",), ("Paul",)), ("Paul", "Peter")
        )

    def test_shuffle(self):
        predicate = shuffle_predicate()
        assert predicate.holds(
            (("Peter", "Paul"), ("Mary",)), ("Peter", "Mary", "Paul")
        )
        assert not predicate.holds(
            (("Peter", "Paul"), ("Mary",)), ("Paul", "Peter", "Mary")
        )

    def test_alternation(self):
        predicate = alternation_predicate()
        assert predicate.holds(
            (("Peter", "Peter"), ("Paul", "Paul")),
            ("Peter", "Paul", "Peter", "Paul"),
        )
        assert not predicate.holds(
            (("Peter", "Peter"), ("Paul",)),
            ("Peter", "Paul", "Peter"),
        )

    def test_length_mismatch_fails(self):
        predicate = concatenation_predicate()
        assert not predicate.holds((("Peter",), ()), ("Peter", "Paul"))

    def test_channel_validation(self):
        with pytest.raises(ReproError):
            SequencePredicate(1, RStar(RChar("2")))
        with pytest.raises(ReproError):
            SequencePredicate(0, RStar(RChar("1")))


class TestAtomEncoding:
    def test_injective_and_stable(self):
        enc = AtomEncoding(BINARY)
        codes = [enc.encode_atom(a) for a in ATOMS]
        assert len(set(codes)) == len(ATOMS)
        assert [enc.encode_atom(a) for a in ATOMS] == codes

    def test_sequence_encoding_shape(self):
        enc = AtomEncoding(BINARY)
        text = enc.encode_sequence(("Peter", "Paul"))
        assert text.count(">") == 2
        assert text.endswith(">")

    def test_separator_clash_rejected(self):
        with pytest.raises(ReproError):
            AtomEncoding(BINARY, separator="0")


class TestTheorem64Translation:
    @pytest.mark.parametrize(
        "predicate_builder",
        [concatenation_predicate, shuffle_predicate, alternation_predicate],
        ids=["concat", "shuffle", "alternation"],
    )
    def test_formula_agrees_with_direct_semantics(self, predicate_builder):
        predicate = predicate_builder()
        formula = predicate_to_formula(predicate)
        assert is_unidirectional(formula)  # the theorem promises this
        enc = AtomEncoding(BINARY)
        pool = sequences(2)
        for s1 in pool:
            for s2 in pool:
                for out in sequences(3):
                    if len(out) != len(s1) + len(s2):
                        continue
                    expected = predicate.holds((s1, s2), out)
                    got = check_string_formula(
                        formula,
                        {
                            "x1": enc.encode_sequence(s1),
                            "x2": enc.encode_sequence(s2),
                            "x3": enc.encode_sequence(out),
                        },
                    )
                    assert got == expected, (s1, s2, out)

    def test_variable_count_validated(self):
        with pytest.raises(ReproError):
            predicate_to_formula(concatenation_predicate(), ("x", "y"))
