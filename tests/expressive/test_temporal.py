"""Tests for Theorem 6.3 landmarks (temporal logic subsumption)."""

from repro.core.alphabet import AB
from repro.core.semantics import check_string_formula
from repro.core.syntax import IsChar
from repro.expressive.temporal import (
    every_even_position,
    every_odd_position,
)


def even_positions_ok(word: str, char: str) -> bool:
    return all(c == char for c in word[1::2])


def odd_positions_ok(word: str, char: str) -> bool:
    return all(c == char for c in word[0::2])


class TestWolperProperty:
    def test_every_even_position_matches_oracle(self):
        phi = every_even_position("x", IsChar("x", "a"))
        for word in AB.strings(5):
            assert check_string_formula(phi, {"x": word}) == even_positions_ok(
                word, "a"
            ), word

    def test_every_odd_position_matches_oracle(self):
        phi = every_odd_position("x", IsChar("x", "a"))
        for word in AB.strings(5):
            assert check_string_formula(phi, {"x": word}) == odd_positions_ok(
                word, "a"
            ), word

    def test_even_property_is_regular_here(self):
        """Unlike plain temporal logic, the property compiles to a
        one-tape unidirectional machine (Theorem 6.1 class)."""
        from repro.core.syntax import is_unidirectional
        from repro.expressive.regular import formula_language_via_nfa

        phi = every_even_position("x", IsChar("x", "a"))
        assert is_unidirectional(phi)
        language = formula_language_via_nfa(phi, AB, 4)
        expected = {
            w for w in AB.strings(4) if even_positions_ok(w, "a")
        }
        assert language == expected


class TestBeyondTemporalLogic:
    def test_equality_is_a_two_row_relation(self):
        """String equality — the paper's first witness that alignment
        calculus exceeds (extended) temporal logic on one sequence."""
        from repro.core import shorthands as sh

        phi = sh.equals("x", "y")
        assert check_string_formula(phi, {"x": "ab", "y": "ab"})
        assert not check_string_formula(phi, {"x": "ab", "y": "ba"})

    def test_manifold_is_expressible(self):
        from repro.core import shorthands as sh

        phi = sh.manifold("x", "y")
        assert check_string_formula(phi, {"x": "abab", "y": "ab"})
