"""Additional QBF coverage: wider blocks, Π₃, degenerate matrices."""

from itertools import product

import pytest

from repro.expressive.qbf import (
    QBF,
    build_block_machine,
    encode_assignment,
    encode_qbf,
    evaluate_qbf_via_machines,
)
from repro.fsa.simulate import accepts


class TestWideBlocks:
    def test_two_variable_inner_block(self):
        # ∃x ∀y,z: x ∨ (y ∧ z) — false (take y=0) … in DNF normal form
        qbf = QBF(
            (("E", ("x",)), ("A", ("y", "z"))),
            (((True, "x"),), ((True, "y"), (True, "z"))),
        )
        assert evaluate_qbf_via_machines(qbf) == qbf.evaluate()

    def test_three_variable_outer_block(self):
        # ∃x,y,z (CNF): (x∨y) ∧ (¬y∨z) ∧ (¬x) — satisfiable: x=0,y=1,z=1
        qbf = QBF(
            (("E", ("x", "y", "z")),),
            (
                ((True, "x"), (True, "y")),
                ((False, "y"), (True, "z")),
                ((False, "x"),),
            ),
        )
        assert evaluate_qbf_via_machines(qbf) is True

    def test_pi3(self):
        # ∀x ∃y ∀z (DNF): (x∧y∧¬z) ∨ (¬x∧¬y) ∨ (y∧z) …
        qbf = QBF(
            (("A", ("x",)), ("E", ("y",)), ("A", ("z",))),
            (
                ((True, "x"), (True, "y"), (False, "z")),
                ((False, "x"), (False, "y")),
                ((True, "y"), (True, "z")),
            ),
        )
        assert evaluate_qbf_via_machines(qbf) == qbf.evaluate()


class TestDegenerateMatrices:
    def test_empty_cnf_matrix_is_true(self):
        qbf = QBF((("E", ("x",)),), ())
        assert qbf.evaluate() is True
        assert evaluate_qbf_via_machines(qbf) is True

    def test_empty_dnf_matrix_is_false(self):
        qbf = QBF((("A", ("x",)),), ())
        assert qbf.evaluate() is False
        assert evaluate_qbf_via_machines(qbf) is False

    def test_unit_clauses(self):
        qbf = QBF(
            (("E", ("x", "y")),),
            (((True, "x"),), ((False, "y"),)),
        )
        assert evaluate_qbf_via_machines(qbf) is True


class TestEncodingInvariants:
    def test_indices_are_ascending(self):
        qbf = QBF(
            (("E", ("p", "q")), ("A", ("r",))),
            (((True, "p"),),),
        )
        text = encode_qbf(qbf)
        prefix = text.split("#")[0]
        indices = [
            part for part in prefix.replace("E", ";").replace("A", ";").split(";") if part
        ]
        values = [int(i, 2) for i in indices]
        assert values == sorted(values)

    def test_block_machine_rejects_foreign_alphabet(self):
        qbf = QBF((("E", ("x",)),), (((True, "x"),),))
        machine = build_block_machine(1, 1)
        instance = encode_qbf(qbf)
        assert accepts(machine, (instance, "T"))
        assert not accepts(machine, (instance, "1"))

    def test_assignment_matches_every_truth_table_row(self):
        qbf = QBF(
            (("E", ("x", "y")),),
            (((True, "x"), (True, "y")),),
        )
        from repro.expressive.qbf import build_matrix_machine

        machine = build_matrix_machine(1, "E")
        instance = encode_qbf(qbf)
        for x, y in product((False, True), repeat=2):
            values = {"x": x, "y": y}
            assert accepts(
                machine, (instance, encode_assignment(qbf, values))
            ) == (x or y), values
