"""Tests for Theorem 6.1: unidirectional 1-var formulae ≡ regular sets."""

import pytest

from repro.core.alphabet import AB, Alphabet
from repro.core.semantics import check_string_formula
from repro.core.syntax import is_unidirectional
from repro.errors import LimitationError, ParseError
from repro.expressive.regular import (
    formula_language_via_nfa,
    one_tape_to_nfa,
    parse_regex,
    regex_language,
    regex_matches,
    regex_to_formula,
    regex_to_nfa,
)

GCA = Alphabet("gca")

PATTERNS = [
    "a*",
    "(ab)*",
    "a|b",
    "(a|b)*abb",
    "a+b?",
    "",
    "a*b*a*",
    "((a|b)(a|b))*",
]


class TestRegexEngine:
    @pytest.mark.parametrize("pattern", PATTERNS)
    def test_engine_agrees_with_stdlib_re(self, pattern):
        import re as stdlib_re

        regex = parse_regex(pattern)
        compiled = stdlib_re.compile(f"(?:{pattern})$" if pattern else "$")
        for word in AB.strings(4):
            assert regex_matches(regex, word) == bool(
                compiled.match(word)
            ), (pattern, word)

    def test_parse_errors(self):
        for bad in ["(", "a)", "*a", "a|*"]:
            with pytest.raises(ParseError):
                parse_regex(bad)

    def test_str_roundtrip(self):
        for pattern in PATTERNS:
            regex = parse_regex(pattern)
            again = parse_regex(str(regex).replace("ε", ""))
            for word in AB.strings(3):
                assert regex_matches(regex, word) == regex_matches(again, word)

    def test_language_enumeration(self):
        regex = parse_regex("(ab)*")
        assert regex_language(regex, AB, 4) == {"", "ab", "abab"}


class TestRegexToFormula:
    @pytest.mark.parametrize("pattern", PATTERNS)
    def test_formula_agrees_with_engine(self, pattern):
        regex = parse_regex(pattern)
        formula = regex_to_formula(regex, "x")
        assert is_unidirectional(formula)
        for word in AB.strings(4):
            assert check_string_formula(formula, {"x": word}) == regex_matches(
                regex, word
            ), (pattern, word)

    def test_paper_gc_plus_a_pattern(self):
        """Example 6 / Section 1: (gc + a)*."""
        regex = parse_regex("(gc|a)*")
        formula = regex_to_formula(regex, "y")
        from repro.workloads.oracles import matches_gc_plus_a_star

        for word in GCA.strings(4):
            assert check_string_formula(
                formula, {"y": word}
            ) == matches_gc_plus_a_star(word), word


class TestOneTapeToNFA:
    @pytest.mark.parametrize("pattern", PATTERNS)
    def test_round_trip_through_machine(self, pattern):
        """regex → formula → FSA → classical NFA ≡ regex."""
        regex = parse_regex(pattern)
        formula = regex_to_formula(regex, "x")
        language = formula_language_via_nfa(formula, AB, 4)
        assert language == regex_language(regex, AB, 4), pattern

    def test_rejects_multi_tape(self):
        from repro.core import shorthands as sh
        from repro.fsa.compile import compile_string_formula

        fsa = compile_string_formula(sh.equals("x", "y"), AB).fsa
        with pytest.raises(LimitationError):
            one_tape_to_nfa(fsa)

    def test_rejects_bidirectional(self):
        from repro.core.syntax import SStar, WTrue, atom, concat, left, right
        from repro.core.syntax import IsEmpty, not_empty
        from repro.fsa.compile import compile_string_formula

        phi = concat(
            SStar(atom(left("x"), not_empty("x"))),
            atom(left("x"), IsEmpty("x")),
            SStar(atom(right("x"), not_empty("x"))),
            atom(right("x"), IsEmpty("x")),
        )
        fsa = compile_string_formula(phi, AB).fsa
        with pytest.raises(LimitationError):
            one_tape_to_nfa(fsa)

    def test_stationary_peek_transitions_handled(self):
        """A formula whose machine peeks characters without moving."""
        from repro.core.syntax import IsChar, IsEmpty, atom, concat, left

        # []_l-style tests create stationary reads after the bypass.
        phi = concat(
            atom(left("x"), IsChar("x", "a")),
            atom(left(), IsChar("x", "a")),  # re-test without moving
            atom(left("x"), IsEmpty("x")),
        )
        language = formula_language_via_nfa(phi, AB, 3)
        assert language == {"a"}


class TestOneVariableGeneralization:
    """The remark after Theorem 6.1: bidirectional movement on a single
    tape does not add expressive power — the language stays regular,
    decided through the crossing automaton."""

    def test_bidirectional_scan_back_language(self):
        from repro.core.syntax import IsChar, IsEmpty, SStar, atom, concat, left, right
        from repro.core.syntax import not_empty
        from repro.expressive.regular import one_variable_language

        phi = concat(
            SStar(atom(left("x"), IsChar("x", "a"))),
            atom(left("x"), IsEmpty("x")),
            SStar(atom(right("x"), not_empty("x"))),
            atom(right("x"), IsEmpty("x")),
            atom(left("x"), IsChar("x", "a")),
        )
        # a⁺ verified forwards, rewound, first character re-checked.
        language = one_variable_language(phi, AB, 4)
        assert language == {"a", "aa", "aaa", "aaaa"}

    def test_unidirectional_falls_back_to_nfa_route(self):
        from repro.core import shorthands as sh
        from repro.expressive.regular import one_variable_language

        language = one_variable_language(sh.constant("x", "ab"), AB, 3)
        assert language == {"ab"}

    def test_matches_brute_force_acceptance(self):
        from repro.core.syntax import SStar, WTrue, atom, concat, left, right
        from repro.core.syntax import IsChar, IsEmpty, not_empty
        from repro.expressive.regular import one_variable_language
        from repro.fsa.compile import compile_string_formula
        from repro.fsa.simulate import accepts

        phi = concat(
            SStar(atom(left("x"), WTrue())),
            atom(left("x"), IsEmpty("x")),
            SStar(atom(right("x"), IsChar("x", "b"))),
            atom(right("x"), IsEmpty("x")),
        )
        fsa = compile_string_formula(phi, AB).fsa
        expected = {w for w in AB.strings(4) if accepts(fsa, (w,))}
        assert one_variable_language(phi, AB, 4) == expected

    def test_rejects_multi_variable(self):
        from repro.core import shorthands as sh
        from repro.expressive.regular import one_variable_language

        with pytest.raises(LimitationError):
            one_variable_language(sh.equals("x", "y"), AB, 2)
