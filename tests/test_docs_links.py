"""Keep the handbook pages honest: every reference must resolve.

Docs drift silently — a renamed module or a moved page leaves dead
links that no doctest catches.  This module enforces two invariants
over ``docs/*.md`` and ``README.md``:

* every **markdown link** to a local target resolves to an existing
  file (relative to the page containing it), and a ``#fragment`` on a
  markdown page names a real heading there (GitHub anchor slugging);
* every **``src/repro…`` path** mentioned anywhere in the prose
  refers to a file or directory that exists in the tree.

External links (``http(s)://``, ``mailto:``) are out of scope — CI
must not depend on the network.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent

#: The pages held to the invariants (same set the doctest runner uses).
PAGES = sorted((ROOT / "docs").glob("*.md")) + [ROOT / "README.md"]

_LINK = re.compile(r"\[[^\]^\[]*\]\(([^()\s]+)\)")
_SRC_PATH = re.compile(r"src/repro[A-Za-z0-9_./-]*[A-Za-z0-9_]")
_FENCE = re.compile(r"^(```|~~~)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$")


def _without_fences(text: str) -> str:
    """The page's prose with fenced code blocks blanked out."""
    kept: list[str] = []
    inside = False
    for line in text.splitlines():
        if _FENCE.match(line.strip()):
            inside = not inside
            continue
        kept.append("" if inside else line)
    return "\n".join(kept)


def _github_anchor(heading: str) -> str:
    """GitHub's heading-to-anchor slug: lowercase, drop punctuation."""
    text = re.sub(r"[`*_]", "", heading.strip()).lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _anchors(path: Path) -> set[str]:
    anchors: set[str] = set()
    for line in _without_fences(
        path.read_text(encoding="utf-8")
    ).splitlines():
        match = _HEADING.match(line)
        if match:
            anchors.add(_github_anchor(match.group(1)))
    return anchors


@pytest.mark.parametrize(
    "page", PAGES, ids=lambda page: str(page.relative_to(ROOT))
)
def test_markdown_links_resolve(page):
    """Local links point at existing files; fragments at real headings."""
    prose = _without_fences(page.read_text(encoding="utf-8"))
    problems: list[str] = []
    for target in _LINK.findall(prose):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path_part, _, fragment = target.partition("#")
        resolved = (
            page if not path_part else (page.parent / path_part).resolve()
        )
        if not resolved.exists():
            problems.append(f"{target!r}: {path_part} does not exist")
            continue
        if fragment and resolved.suffix == ".md":
            if fragment not in _anchors(resolved):
                problems.append(
                    f"{target!r}: no heading for #{fragment} "
                    f"in {resolved.name}"
                )
    assert not problems, (
        f"dead link(s) in {page.relative_to(ROOT)}:\n  "
        + "\n  ".join(problems)
    )


@pytest.mark.parametrize(
    "page", PAGES, ids=lambda page: str(page.relative_to(ROOT))
)
def test_mentioned_source_paths_exist(page):
    """Every ``src/repro…`` path the page cites exists in the tree."""
    text = page.read_text(encoding="utf-8")
    missing = sorted(
        {
            mention
            for mention in _SRC_PATH.findall(text)
            if not (ROOT / mention).exists()
        }
    )
    assert not missing, (
        f"{page.relative_to(ROOT)} mentions nonexistent source "
        f"path(s): {missing}"
    )


def test_checker_sees_the_pages():
    """Guard the checker itself: the handbook pages must be scanned."""
    names = {page.name for page in PAGES}
    assert {"architecture.md", "observability.md", "service.md"} <= names
    assert "README.md" in names
