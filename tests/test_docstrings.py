"""Docstring conventions for the public API, enforced without ruff.

CI runs ``ruff check --select D`` (pydocstyle rules) over
``src/repro/{engine,parallel,observability,ir,storage,service,slp}``,
``src/repro/fsa/kernel.py`` and ``src/repro/fsa/determinize.py``;
this test enforces the load-bearing
subset locally — in environments without ruff — so the convention
cannot silently rot between CI runs:

* every module, public class and public function/method in the scoped
  packages has a docstring;
* the docstring opens with a one-line summary that ends with a period
  (or other sentence-final punctuation).

Private names (leading underscore), dunders and nested ``def``s are
exempt, matching the ruff D configuration in ``pyproject.toml``.
"""

from __future__ import annotations

import ast
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

#: The packages whose public API the docstring convention covers.
SCOPED_PACKAGES = (
    "engine",
    "parallel",
    "observability",
    "ir",
    "storage",
    "service",
    "slp",
)

#: Individual modules covered in addition to the scoped packages.
SCOPED_MODULES = ("fsa/kernel.py", "fsa/determinize.py")


def _scoped_files() -> list[Path]:
    files = []
    for package in SCOPED_PACKAGES:
        files.extend(sorted((SRC / package).rglob("*.py")))
    for module in SCOPED_MODULES:
        files.append(SRC / module)
    assert all(path.is_file() for path in files), f"missing sources under {SRC}"
    assert files, f"no sources found under {SRC}"
    return files


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _summary_problem(docstring: str) -> str | None:
    lines = [line.strip() for line in docstring.strip().splitlines()]
    if not lines or not lines[0]:
        return "docstring has no summary line"
    if not lines[0].endswith((".", "!", "?", ":", "::")):
        return f"summary line does not end with punctuation: {lines[0]!r}"
    return None


def _check_node(node, where: str, problems: list[str]) -> None:
    docstring = ast.get_docstring(node)
    if not docstring:
        problems.append(f"{where}: missing docstring")
        return
    problem = _summary_problem(docstring)
    if problem:
        problems.append(f"{where}: {problem}")


def _walk(scope, prefix: str, path: Path, problems: list[str]) -> None:
    for node in scope.body:
        if isinstance(node, ast.ClassDef):
            if _is_public(node.name):
                _check_node(node, f"{path}:{node.lineno} {prefix}{node.name}", problems)
                _walk(node, f"{prefix}{node.name}.", path, problems)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if _is_public(node.name):
                _check_node(
                    node, f"{path}:{node.lineno} {prefix}{node.name}", problems
                )


def test_public_api_docstrings():
    """Every scoped public module/class/function has a summary docstring."""
    problems: list[str] = []
    for path in _scoped_files():
        tree = ast.parse(path.read_text(encoding="utf-8"))
        rel = path.relative_to(SRC.parent.parent)
        _check_node(tree, f"{rel}:1 <module>", problems)
        _walk(tree, "", rel, problems)
    assert not problems, "docstring convention violations:\n" + "\n".join(
        problems
    )
