"""Differential harness: parallel evaluation vs the sequential engines.

The parallel layer's contract is exact answer equality: for every
workload generator, every worker count and every shard count, the
sharded evaluation must return the same answer set — compared as
sorted tuples — as the ``naive``, ``planner`` and ``algebra`` engines.
Both parallel regimes are exercised:

* planner-shaped queries (explicit ``length``) shard their generator
  runs;
* explicit-``domain`` evaluations shard the naive candidate space
  ``domain^k`` by mixed-radix index ranges.

``min_parallel_items=1`` forces real pool dispatch even for the tiny
test workloads, so worker counts above one genuinely cross process
boundaries.
"""

import pytest

from repro.core import shorthands as sh
from repro.core.alphabet import AB, Alphabet
from repro.core.query import Query
from repro.core.syntax import And, Not, exists, lift, rel
from repro.engine import ParallelEngine, QueryEngine
from repro.workloads.generators import (
    copy_language_strings,
    example_database,
    manifold_strings,
    near_duplicates,
    uniform_strings,
    with_planted_motif,
)

DNA = Alphabet("acgt")

#: The worker/shard matrix required of the differential harness.
WORKER_COUNTS = (1, 2, 4)
SHARD_COUNTS = (1, 3, 7)

#: Sequential reference engines the parallel answers are compared to.
REFERENCE_ENGINES = ("naive", "planner", "algebra")


def _databases():
    yield "uniform", example_database(AB, seed=3, size=4, max_length=3)
    yield "motif", example_database(
        AB,
        singles=with_planted_motif(AB, "ab", count=5, max_length=3, seed=5),
        seed=7,
        size=3,
        max_length=2,
    )
    yield "near-dup", example_database(
        AB,
        singles=near_duplicates(AB, "aba", count=4, max_edits=1, seed=11),
        seed=13,
        size=3,
        max_length=3,
    )
    yield "copy-lang", example_database(
        AB,
        singles=copy_language_strings(count=5, max_half_length=2, seed=9),
        seed=15,
        size=3,
        max_length=2,
    )
    yield "manifold", example_database(
        AB,
        pairs=manifold_strings(AB, count=4, max_base_length=2, max_repeats=2, seed=21),
        seed=17,
        size=3,
        max_length=2,
    )
    yield "dna", example_database(
        DNA,
        singles=uniform_strings(DNA, 3, 2, seed=17),
        seed=19,
        size=2,
        max_length=2,
    )


def _queries(alphabet):
    yield "select-prefix", Query(
        ("x", "y"),
        And(rel("R1", "x", "y"), lift(sh.prefix_of("x", "y"))),
        alphabet,
    )
    yield "join", Query(
        ("x",),
        exists("y", And(rel("R1", "x", "y"), rel("R2", "y"))),
        alphabet,
    )
    yield "generate-concat", Query(
        ("x",),
        exists(
            ["y", "z"],
            And(
                And(rel("R2", "y"), rel("R2", "z")),
                lift(sh.concatenation("x", "y", "z")),
            ),
        ),
        alphabet,
    )
    yield "negated-filter", Query(
        ("x", "y"),
        And(rel("R1", "x", "y"), Not(rel("R2", "y"))),
        alphabet,
    )


DATABASES = list(_databases())
DB_PARAMS = [pytest.param(name, db, id=name) for name, db in DATABASES]

_SESSION = QueryEngine()
_REFERENCES: dict = {}


def _references(dbname, qname, query, db, bound):
    """Sequential answers, computed once per (db, query) and cached."""
    key = (dbname, qname)
    if key not in _REFERENCES:
        _REFERENCES[key] = {
            name: sorted(
                _SESSION.evaluate(query, db, length=bound, engine=name)
            )
            for name in REFERENCE_ENGINES
        }
    return _REFERENCES[key]


def _parallel_engine(workers, shards):
    return ParallelEngine(
        workers=workers, shards=shards, min_parallel_items=1
    )


@pytest.mark.parametrize("shards", SHARD_COUNTS)
@pytest.mark.parametrize("workers", WORKER_COUNTS)
@pytest.mark.parametrize("dbname,db", DB_PARAMS)
def test_parallel_matches_every_sequential_engine(dbname, db, workers, shards):
    bound = db.max_string_length() + 1
    for qname, query in _queries(db.alphabet):
        refs = _references(dbname, qname, query, db, bound)
        engine = _parallel_engine(workers, shards)
        got = sorted(
            _SESSION.evaluate(query, db, length=bound, engine=engine)
        )
        for name in REFERENCE_ENGINES:
            assert got == refs[name], (
                f"{dbname}/{qname}: parallel(workers={workers}, "
                f"shards={shards}) disagrees with {name}"
            )
        report = engine.last_report
        assert report is not None
        assert report.shards_completed == report.shards_planned


@pytest.mark.parametrize("shards", SHARD_COUNTS)
@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_parallel_naive_shard_path_matches_reference(workers, shards):
    """Explicit domains force candidate-space sharding; answers must
    still match the naive reference over the same domain."""
    _, db = DATABASES[0]
    bound = 3
    domain = _SESSION.domain_for(AB, bound)
    for qname, query in _queries(AB):
        if qname in ("join", "generate-concat"):
            continue  # ∃-quantified heads need the planner path
        reference = sorted(
            _SESSION.evaluate(query, db, domain=domain, engine="naive")
        )
        engine = _parallel_engine(workers, shards)
        got = sorted(
            _SESSION.evaluate(query, db, domain=domain, engine=engine)
        )
        assert got == reference, (
            f"{qname}: naive-shard parallel(workers={workers}, "
            f"shards={shards}) disagrees with naive"
        )
        report = engine.last_report
        assert report is not None
        assert report.shards_planned >= 1
        assert report.mode == ("parallel" if workers > 1 else "sequential")


def test_cold_parallel_session_matches_warm():
    """A fresh session (empty caches) agrees with the warmed-up module
    session — sharding must not depend on cache state."""
    dbname, db = DATABASES[1]
    bound = db.max_string_length() + 1
    for qname, query in _queries(db.alphabet):
        refs = _references(dbname, qname, query, db, bound)
        cold = QueryEngine()
        got = sorted(
            cold.evaluate(
                query, db, length=bound, engine=_parallel_engine(2, 3)
            )
        )
        assert got == refs["naive"], f"{qname}: cold session disagrees"


def test_parallel_certified_bound_matches_auto():
    """With no explicit truncation, parallel derives the certified
    bound and must agree with the sequential auto engine."""
    _, db = DATABASES[0]
    for qname, query in _queries(AB):
        if qname == "negated-filter":
            continue  # unsafe without a bound: certification rejects it
        sequential = sorted(
            _SESSION.evaluate(query, db, engine="auto", workers=1)
        )
        got = sorted(
            _SESSION.evaluate(query, db, engine=_parallel_engine(2, 3))
        )
        assert got == sequential, f"{qname}: certified-bound disagreement"


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_algebra_engine_with_workers_matches_sequential(workers):
    """The algebra engine's sharded selections are also differential:
    worker counts never change db(E ↓ l)."""
    dbname, db = DATABASES[2]
    bound = db.max_string_length() + 1
    for qname, query in _queries(db.alphabet):
        refs = _references(dbname, qname, query, db, bound)
        got = sorted(
            _SESSION.evaluate(
                query, db, length=bound, engine="algebra",
                workers=workers, shards=3,
            )
        )
        assert got == refs["algebra"], (
            f"{qname}: algebra workers={workers} disagrees"
        )


@pytest.mark.parametrize("workers", (2, 4))
def test_auto_with_workers_matches_sequential_auto(workers):
    """auto folds into the parallel engine above the size threshold;
    the fold must be invisible in the answer set."""
    dbname, db = DATABASES[0]
    bound = db.max_string_length() + 1
    for qname, query in _queries(db.alphabet):
        sequential = sorted(
            _SESSION.evaluate(
                query, db, length=bound, engine="auto", workers=1
            )
        )
        got = sorted(
            _SESSION.evaluate(
                query, db, length=bound, engine="auto", workers=workers
            )
        )
        assert got == sequential, f"{qname}: auto workers={workers} disagrees"
