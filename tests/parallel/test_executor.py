"""Unit and integration tests for the parallel executor layer.

Covers the pieces the differential harness exercises only indirectly:
the sequential-fallback policy, the execution report and its session
accounting, worker-cache write-back, batch evaluation, and the auto
engine's size heuristic.
"""

import pytest

from repro.core import shorthands as sh
from repro.core.alphabet import AB
from repro.core.query import Query
from repro.core.syntax import And, exists, lift, rel
from repro.engine import ParallelEngine, QueryEngine
from repro.engine import strategies
from repro.parallel import (
    NaiveShardTask,
    ParallelExecutor,
    ShardPlanner,
    default_worker_count,
    shutdown_pools,
)
from repro.workloads.generators import example_database


@pytest.fixture()
def db():
    return example_database(AB, seed=3, size=4, max_length=3)


def _prefix_query():
    return Query(
        ("x", "y"),
        And(rel("R1", "x", "y"), lift(sh.prefix_of("x", "y"))),
        AB,
    )


def _concat_query():
    return Query(
        ("x",),
        exists(
            ["y", "z"],
            And(
                And(rel("R2", "y"), rel("R2", "z")),
                lift(sh.concatenation("x", "y", "z")),
            ),
        ),
        AB,
    )


class TestExecutorPolicy:
    def test_empty_task_list_is_a_no_op(self):
        executor = ParallelExecutor(workers=4)
        assert executor.run([]) == []
        assert executor.report.shards_planned == 0
        assert executor.report.shards_completed == 0

    def test_single_worker_runs_sequentially(self, db):
        session = QueryEngine()
        engine = ParallelEngine(workers=1, shards=4, min_parallel_items=1)
        session.evaluate(
            _prefix_query(), db, domain=session.domain_for(AB, 2),
            engine=engine,
        )
        assert engine.last_report.mode == "sequential"
        assert engine.last_report.workers == 1

    def test_tiny_input_falls_back_to_sequential(self, db):
        """Below min_parallel_items the pool is never touched, even
        with many workers configured."""
        session = QueryEngine()
        engine = ParallelEngine(
            workers=4, shards=4, min_parallel_items=10_000
        )
        session.evaluate(
            _prefix_query(), db, domain=session.domain_for(AB, 2),
            engine=engine,
        )
        assert engine.last_report.mode == "sequential"
        assert engine.last_report.shards_completed == (
            engine.last_report.shards_planned
        )

    def test_plan_respects_explicit_shard_count(self):
        executor = ParallelExecutor(workers=2, planner=ShardPlanner(5))
        assert len(executor.plan(100)) == 5

    def test_default_worker_count_is_positive(self):
        assert default_worker_count() >= 1

    def test_shutdown_pools_is_idempotent(self):
        shutdown_pools()
        shutdown_pools()


class TestExecutionReport:
    def test_report_counts_and_describe(self, db):
        session = QueryEngine()
        engine = ParallelEngine(workers=2, shards=3, min_parallel_items=1)
        session.evaluate(
            _prefix_query(), db, domain=session.domain_for(AB, 2),
            engine=engine,
        )
        report = engine.last_report
        assert report.mode == "parallel"
        assert report.workers == 2
        assert report.shards_planned == 3
        assert report.shards_completed == 3
        assert report.retries == 0
        assert report.wall_seconds > 0.0
        text = report.describe()
        assert "workers=2" in text and "shards=3/3" in text
        snapshot = report.snapshot()
        assert snapshot["shards_completed"] == 3

    def test_session_stats_accumulate_reports(self, db):
        session = QueryEngine()
        engine = ParallelEngine(workers=2, shards=3, min_parallel_items=1)
        domain = session.domain_for(AB, 2)
        session.evaluate(_prefix_query(), db, domain=domain, engine=engine)
        session.evaluate(_prefix_query(), db, domain=domain, engine=engine)
        totals = session.stats.snapshot()["parallel"]
        assert totals["runs"] == 2
        assert totals["pooled_runs"] == 2
        assert totals["shards_completed"] == 6
        assert "parallel runs=2" in session.stats.describe()

    def test_worker_results_fold_back_into_session_cache(self, db):
        """Second run of a generate-shaped query is served from the
        session cache: the report shows hits and no live shards."""
        session = QueryEngine()
        query = _concat_query()
        bound = db.max_string_length() + 1

        first = ParallelEngine(workers=2, shards=3, min_parallel_items=1)
        cold = session.evaluate(query, db, length=bound, engine=first)
        assert first.last_report.cache_hits == 0

        second = ParallelEngine(workers=2, shards=3, min_parallel_items=1)
        warm = session.evaluate(query, db, length=bound, engine=second)
        assert warm == cold
        assert second.last_report.cache_hits > 0
        assert second.last_report.shards_planned == 0


class TestSessionIntegration:
    def test_evaluate_many_with_workers_matches_individual(self, db):
        session = QueryEngine()
        queries = [_prefix_query(), _concat_query()]
        bound = db.max_string_length() + 1
        batch = session.evaluate_many(
            queries, db, length=bound, engine="parallel", workers=2, shards=3
        )
        individual = [
            session.evaluate(q, db, length=bound, engine="naive")
            for q in queries
        ]
        assert batch == individual

    def test_workers_kwarg_ignored_by_unconfigurable_engines(self, db):
        """Engines without a ``configured`` hook accept the kwarg
        silently — sessions stay engine-agnostic."""
        session = QueryEngine()
        bound = db.max_string_length() + 1
        got = session.evaluate(
            _prefix_query(), db, length=bound, engine="naive", workers=4
        )
        want = session.evaluate(
            _prefix_query(), db, length=bound, engine="naive"
        )
        assert got == want


class TestAutoHeuristic:
    def test_auto_upgrades_to_parallel_above_threshold(self, db, monkeypatch):
        monkeypatch.setattr(strategies, "AUTO_PARALLEL_THRESHOLD", 1)
        session = QueryEngine()
        bound = db.max_string_length() + 1
        want = session.evaluate(
            _prefix_query(), db, length=bound, engine="naive"
        )
        got = session.evaluate(
            _prefix_query(), db, length=bound, engine="auto", workers=2
        )
        assert got == want
        assert session.stats.snapshot()["parallel"]["runs"] == 1

    def test_auto_stays_sequential_below_threshold(self, db, monkeypatch):
        monkeypatch.setattr(strategies, "AUTO_PARALLEL_THRESHOLD", 10**9)
        session = QueryEngine()
        bound = db.max_string_length() + 1
        session.evaluate(
            _prefix_query(), db, length=bound, engine="auto", workers=4
        )
        assert session.stats.snapshot()["parallel"].get("runs", 0) == 0

    def test_auto_single_worker_never_records_parallel(self, db):
        session = QueryEngine()
        bound = db.max_string_length() + 1
        session.evaluate(
            _prefix_query(), db, length=bound, engine="auto", workers=1
        )
        assert session.stats.snapshot()["parallel"].get("runs", 0) == 0


class TestTaskNarrowing:
    def test_narrowed_naive_task_covers_child_range(self, db):
        """Re-split tasks must slice the original candidate range, not
        restart it — the crash-retry correctness hinge."""
        session = QueryEngine()
        domain = session.domain_for(AB, 2)
        query = _prefix_query()
        planner = ShardPlanner(shards=1)
        (shard,) = planner.plan(len(domain) ** 2, workers=1)
        task = NaiveShardTask(
            shard, query.formula, query.head, db, domain
        )
        whole = task.run()
        merged: set = set()
        for child in shard.split(3):
            merged |= set(task.narrowed(child).run())
        assert merged == set(whole)
