"""Property tests for the shard planner (hypothesis).

The planner's invariants are what make parallel answers provably equal
to sequential ones: shards are disjoint, cover the candidate index
space exactly, are deterministic for a fixed (total, workers) key, and
re-splitting after a simulated worker crash preserves coverage.
"""

from itertools import product

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel.sharding import (
    OVERSHARD_FACTOR,
    Shard,
    ShardPlanner,
    decode_candidate,
)

totals = st.integers(min_value=0, max_value=100_000)
workers = st.integers(min_value=1, max_value=16)
shard_counts = st.integers(min_value=1, max_value=64)


def _covered(shards):
    """The set of candidate indices covered, asserting disjointness."""
    seen = set()
    for shard in shards:
        block = set(range(shard.start, shard.stop))
        assert not (seen & block), f"overlapping shard {shard}"
        seen |= block
    return seen


@given(total=totals, workers=workers)
def test_plan_covers_domain_exactly_and_disjointly(total, workers):
    plan = ShardPlanner().plan(total, workers=workers)
    assert _covered(plan) == set(range(total))


@given(total=totals, workers=workers)
def test_plan_is_deterministic(total, workers):
    first = ShardPlanner().plan(total, workers=workers)
    second = ShardPlanner().plan(total, workers=workers)
    assert first == second


@given(total=st.integers(min_value=1, max_value=100_000), workers=workers)
def test_plan_sizes_are_balanced(total, workers):
    plan = ShardPlanner().plan(total, workers=workers)
    sizes = [shard.size for shard in plan]
    assert all(size >= 1 for size in sizes)
    assert max(sizes) - min(sizes) <= 1
    assert len(plan) <= min(total, workers * OVERSHARD_FACTOR)


@given(total=st.integers(min_value=1, max_value=100_000), count=shard_counts)
def test_explicit_shard_count_is_respected(total, count):
    plan = ShardPlanner(shards=count).plan(total, workers=4)
    assert len(plan) == min(total, count)
    assert _covered(plan) == set(range(total))


@given(
    total=st.integers(min_value=1, max_value=10_000),
    workers=workers,
    data=st.data(),
)
def test_resplit_preserves_coverage(total, workers, data):
    """Simulate a crash: replace one shard by its split children; the
    union of ranges must still cover [0, total) exactly."""
    plan = list(ShardPlanner().plan(total, workers=workers))
    index = data.draw(st.integers(min_value=0, max_value=len(plan) - 1))
    parts = data.draw(st.integers(min_value=2, max_value=5))
    victim = plan.pop(index)
    children = victim.split(parts)
    assert _covered(children) == set(range(victim.start, victim.stop))
    for child in children:
        assert child.generation == victim.generation + 1
    assert _covered(plan + list(children)) == set(range(total))


@given(
    total=st.integers(min_value=1, max_value=10_000),
    workers=workers,
    rounds=st.integers(min_value=1, max_value=4),
)
@settings(deadline=None)
def test_repeated_resplit_of_every_shard_preserves_coverage(
    total, workers, rounds
):
    """The retry loop may re-split every shard several times over; the
    frontier must always remain an exact partition."""
    frontier = list(ShardPlanner().plan(total, workers=workers))
    for _ in range(rounds):
        frontier = [child for shard in frontier for child in shard.split()]
    assert _covered(frontier) == set(range(total))


@given(total=totals, workers=workers)
def test_cache_key_ignores_generation(total, workers):
    for shard in ShardPlanner().plan(total, workers=workers):
        bumped = Shard(
            start=shard.start,
            stop=shard.stop,
            index=shard.index,
            of=shard.of,
            generation=shard.generation + 3,
        )
        assert shard.cache_key() == bumped.cache_key()


@given(total=st.integers(min_value=2, max_value=10_000), workers=workers)
def test_cache_keys_distinct_across_shards(total, workers):
    plan = ShardPlanner().plan(total, workers=workers)
    keys = {shard.cache_key() for shard in plan}
    assert len(keys) == len(plan)


def test_split_of_singleton_shard_bumps_generation_only():
    shard = Shard(start=5, stop=6, index=0, of=1, generation=0)
    (child,) = shard.split(4)
    assert (child.start, child.stop) == (5, 6)
    assert child.generation == 1


def test_plan_of_empty_domain_is_empty():
    assert ShardPlanner().plan(0, workers=8) == ()


@given(
    width=st.integers(min_value=0, max_value=3),
    domain=st.lists(
        st.text(alphabet="ab", max_size=2), min_size=1, max_size=5, unique=True
    ),
)
def test_decode_candidate_matches_product_order(width, domain):
    pool = tuple(domain)
    expected = list(product(pool, repeat=width))
    decoded = [
        decode_candidate(pool, width, index)
        for index in range(len(pool) ** width)
    ]
    assert decoded == expected
