"""Tests for algebra evaluation, including generative selection."""

import pytest

from repro.algebra.evaluate import evaluate_expression
from repro.algebra.expressions import (
    Diff,
    Product,
    Project,
    Rel,
    Select,
    SigmaL,
    SigmaStar,
    Union,
    intersect,
    product_of,
    sigma_power,
)
from repro.core import shorthands as sh
from repro.core.alphabet import AB
from repro.core.database import Database
from repro.errors import EvaluationError
from repro.fsa.compile import compile_string_formula


def db() -> Database:
    return Database(
        AB,
        {
            "R1": [("a", "b"), ("ab", "ab"), ("b", "a")],
            "R2": [("ab",), ("b",)],
        },
    )


class TestBasicOperators:
    def test_relation_lookup(self):
        assert evaluate_expression(Rel("R2", 1), db(), 3) == {("ab",), ("b",)}

    def test_union_diff_intersect(self):
        r2 = Rel("R2", 1)
        first = Project(Rel("R1", 2), (0,))
        got_union = evaluate_expression(Union(r2, first), db(), 3)
        assert got_union == {("ab",), ("b",), ("a",)}
        got_diff = evaluate_expression(Diff(first, r2), db(), 3)
        assert got_diff == {("a",)}
        got_meet = evaluate_expression(intersect(first, r2), db(), 3)
        assert got_meet == {("ab",), ("b",)}

    def test_product(self):
        expr = Product(Rel("R2", 1), Rel("R2", 1))
        assert len(evaluate_expression(expr, db(), 3)) == 4

    def test_project_reorders(self):
        expr = Project(Rel("R1", 2), (1, 0))
        assert evaluate_expression(expr, db(), 3) == {
            ("b", "a"),
            ("ab", "ab"),
            ("a", "b"),
        }

    def test_zero_ary_projection_as_emptiness_test(self):
        assert evaluate_expression(Project(Rel("R2", 1), ()), db(), 3) == {()}
        assert evaluate_expression(Project(Rel("R9", 1), ()), db(), 3) == frozenset()

    def test_sigma_truncation(self):
        got = evaluate_expression(SigmaStar(), db(), 1)
        assert got == {("",), ("a",), ("b",)}
        got_l = evaluate_expression(SigmaL(1), db(), 5)
        assert got_l == {("",), ("a",), ("b",)}

    def test_negative_length_rejected(self):
        with pytest.raises(EvaluationError):
            evaluate_expression(Rel("R2", 1), db(), -1)


class TestSelection:
    def test_select_filters_database_tuples(self):
        machine = compile_string_formula(sh.equals("x", "y"), AB).fsa
        expr = Select(Rel("R1", 2), machine)
        assert evaluate_expression(expr, db(), 3) == {("ab", "ab")}

    def test_generative_selection_concatenation(self):
        # The paper's Section 4 running example:
        # π₁ σ_A (Σ* × R1' × R3') — strings that concatenate a string
        # from one relation with a string from another.
        base = Database(AB, {"Ry": [("a",), ("b",)], "Rz": [("b",)]})
        machine = compile_string_formula(
            sh.concatenation("x", "y", "z"), AB, variables=("x", "y", "z")
        ).fsa
        expr = Project(
            Select(
                product_of([SigmaStar(), Rel("Ry", 1), Rel("Rz", 1)]), machine
            ),
            (0,),
        )
        assert evaluate_expression(expr, base, 4) == {("ab",), ("bb",)}

    def test_generative_selection_matches_materialized(self):
        machine = compile_string_formula(sh.prefix_of("x", "y"), AB).fsa
        generative = Select(
            product_of([SigmaStar(), Rel("R2", 1)]), machine
        )
        materialized = Select(
            product_of([SigmaL(2), Rel("R2", 1)]), machine
        )
        assert evaluate_expression(generative, db(), 2) == evaluate_expression(
            materialized, db(), 2
        )

    def test_generative_selection_sigma_in_middle(self):
        machine = compile_string_formula(
            sh.concatenation("x", "y", "z"), AB, variables=("x", "y", "z")
        ).fsa
        expr = Select(
            product_of([Rel("R2", 1), SigmaStar(), Rel("R2", 1)]), machine
        )
        got = evaluate_expression(expr, db(), 2)
        # x=ab: splits with z ∈ {ab, b}: y="" z="ab", y="a" z="b";
        # x=b: y="" z="b".
        assert got == {("ab", "", "ab"), ("ab", "a", "b"), ("b", "", "b")}

    def test_selection_over_sigma_only(self):
        machine = compile_string_formula(sh.constant("x", "ab"), AB).fsa
        expr = Select(product_of([SigmaStar()]), machine)
        assert evaluate_expression(expr, db(), 3) == {("ab",)}
