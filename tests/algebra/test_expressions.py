"""Tests for the algebra AST."""

import pytest

from repro.algebra.expressions import (
    Diff,
    Product,
    Project,
    Rel,
    Select,
    SigmaL,
    SigmaStar,
    Union,
    intersect,
    product_of,
    relation_symbols,
    sigma_power,
    truncated,
    uses_sigma_star,
)
from repro.core import shorthands as sh
from repro.core.alphabet import AB
from repro.errors import ArityError
from repro.fsa.compile import compile_string_formula


def equals_machine():
    return compile_string_formula(sh.equals("x", "y"), AB).fsa


class TestArity:
    def test_basic_arities(self):
        assert Rel("R", 3).arity == 3
        assert SigmaStar().arity == 1
        assert SigmaL(4).arity == 1
        assert Product(Rel("R", 2), SigmaStar()).arity == 3
        assert Project(Rel("R", 3), (2, 0)).arity == 2

    def test_union_arity_mismatch(self):
        with pytest.raises(ArityError):
            Union(Rel("R", 1), Rel("S", 2))

    def test_diff_arity_mismatch(self):
        with pytest.raises(ArityError):
            Diff(Rel("R", 1), Rel("S", 2))

    def test_projection_validates_columns(self):
        with pytest.raises(ArityError):
            Project(Rel("R", 2), (0, 0))
        with pytest.raises(ArityError):
            Project(Rel("R", 2), (5,))

    def test_zero_ary_projection_allowed(self):
        assert Project(Rel("R", 2), ()).arity == 0

    def test_select_arity_checked(self):
        with pytest.raises(ArityError):
            Select(Rel("R", 3), equals_machine())
        Select(Rel("R", 2), equals_machine())

    def test_sigma_l_bound_validated(self):
        with pytest.raises(ArityError):
            SigmaL(-1)

    def test_operator_sugar(self):
        r, s = Rel("R", 1), Rel("S", 1)
        assert (r | s) == Union(r, s)
        assert (r - s) == Diff(r, s)
        assert (r * s) == Product(r, s)


class TestHelpers:
    def test_intersect_encoding(self):
        r, s = Rel("R", 1), Rel("S", 1)
        assert intersect(r, s) == Diff(r, Diff(r, s))

    def test_product_of(self):
        factors = [Rel("R", 1), SigmaStar(), SigmaStar()]
        assert product_of(factors).arity == 3
        with pytest.raises(ArityError):
            product_of([])

    def test_sigma_power(self):
        assert all(isinstance(e, SigmaStar) for e in sigma_power(3))
        assert all(isinstance(e, SigmaL) for e in sigma_power(2, bound=5))

    def test_truncated_replaces_sigma_star(self):
        expr = Select(Product(Rel("R", 1), SigmaStar()), equals_machine())
        cut = truncated(expr, 7)
        assert not uses_sigma_star(cut)
        assert uses_sigma_star(expr)

    def test_relation_symbols(self):
        expr = Union(
            Project(Product(Rel("R", 1), Rel("S", 1)), (0,)), Rel("T", 1)
        )
        assert relation_symbols(expr) == {"R", "S", "T"}
