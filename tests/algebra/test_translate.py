"""Tests for Theorems 4.1 / 4.2: calculus ⇄ algebra agreement."""

import pytest

from repro.algebra.evaluate import evaluate_expression
from repro.algebra.expressions import (
    Product,
    Project,
    Rel,
    Select,
    SigmaL,
    SigmaStar,
    Union,
    product_of,
)
from repro.algebra.translate import (
    algebra_to_calculus,
    calculus_to_algebra,
    partitioned,
)
from repro.core import shorthands as sh
from repro.core.alphabet import AB
from repro.core.database import Database
from repro.core.semantics import evaluate_naive
from repro.core.syntax import And, Exists, Not, exists, free_variables, lift, rel
from repro.errors import EvaluationError
from repro.fsa.compile import compile_string_formula


def db() -> Database:
    return Database(
        AB,
        {
            "R1": [("a", "b"), ("ab", "ab"), ("b", "a"), ("b", "b")],
            "R2": [("ab",), ("b",)],
        },
    )


def assert_agree(formula, head, length=2):
    """Naive calculus answer == translated algebra answer."""
    database = db()
    domain = tuple(AB.strings(length))
    expected = evaluate_naive(formula, head, database, domain)
    expression = calculus_to_algebra(formula, head, AB)
    got = evaluate_expression(expression, database, length)
    assert got == expected, (formula, expected, got)


class TestPartitioned:
    def test_equates_columns(self):
        expr = partitioned(Rel("R1", 2), [[0, 1]], AB)
        assert evaluate_expression(expr, db(), 3) == {("ab",), ("b",)}

    def test_reorders_by_parts(self):
        expr = partitioned(Rel("R1", 2), [[1], [0]], AB)
        got = evaluate_expression(expr, db(), 3)
        assert ("b", "a") in got and ("a", "b") in got

    def test_partition_must_cover(self):
        from repro.errors import ArityError

        with pytest.raises(ArityError):
            partitioned(Rel("R1", 2), [[0]], AB)


class TestCalculusToAlgebra:
    def test_relational_atom(self):
        assert_agree(rel("R1", "x", "y"), ("x", "y"))

    def test_relational_atom_repeated_variable(self):
        assert_agree(rel("R1", "x", "x"), ("x",))

    def test_string_atom(self):
        assert_agree(lift(sh.constant("x", "ab")), ("x",))

    def test_conjunction_shared_variable(self):
        phi = And(rel("R1", "x", "y"), rel("R2", "y"))
        assert_agree(phi, ("x", "y"))

    def test_conjunction_with_string_formula(self):
        phi = And(rel("R1", "x", "y"), lift(sh.equals("x", "y")))
        assert_agree(phi, ("x", "y"))

    def test_negation(self):
        phi = And(rel("R2", "x"), Not(rel("R1", "x", "x")))
        assert_agree(phi, ("x",))

    def test_exists(self):
        phi = exists("y", rel("R1", "x", "y"))
        assert_agree(phi, ("x",))

    def test_exists_with_string_constraint(self):
        phi = exists(
            ["y", "z"],
            And(
                And(rel("R2", "y"), rel("R2", "z")),
                lift(sh.concatenation("x", "y", "z")),
            ),
        )
        assert_agree(phi, ("x",), length=3)

    def test_head_reordering(self):
        phi = rel("R1", "x", "y")
        expr = calculus_to_algebra(phi, ("y", "x"), AB)
        got = evaluate_expression(expr, db(), 2)
        expected = {(v, u) for (u, v) in db().relation("R1")}
        assert got == expected

    def test_head_must_match_free_variables(self):
        with pytest.raises(EvaluationError):
            calculus_to_algebra(rel("R1", "x", "y"), ("x",), AB)

    def test_vacuous_exists(self):
        phi = Exists("q", rel("R2", "x"))
        assert_agree(phi, ("x",))


class TestAlgebraToCalculus:
    def assert_roundtrip(self, expression, length=2):
        database = db()
        formula = algebra_to_calculus(expression)
        head = tuple(sorted(free_variables(formula)))
        # Columns are x1..xk: sorted order equals column order for k <= 9.
        domain = tuple(AB.strings(length))
        expected = evaluate_expression(expression, database, length)
        got = evaluate_naive(formula, head, database, domain)
        assert got == expected, (expression, expected, got)

    def test_relation(self):
        self.assert_roundtrip(Rel("R1", 2))

    def test_union(self):
        self.assert_roundtrip(Union(Rel("R2", 1), Project(Rel("R1", 2), (0,))))

    def test_difference(self):
        from repro.algebra.expressions import Diff

        self.assert_roundtrip(Diff(SigmaL(1), Rel("R2", 1)))

    def test_product(self):
        self.assert_roundtrip(Product(Rel("R2", 1), Rel("R2", 1)))

    def test_projection(self):
        self.assert_roundtrip(Project(Rel("R1", 2), (1,)))

    def test_projection_reorder(self):
        self.assert_roundtrip(Project(Rel("R1", 2), (1, 0)))

    def test_sigma_l(self):
        self.assert_roundtrip(SigmaL(1))

    def test_sigma_star_is_identically_true(self):
        formula = algebra_to_calculus(SigmaStar())
        database = db()
        domain = tuple(AB.strings(2))
        got = evaluate_naive(formula, ("x1",), database, domain)
        assert got == {(u,) for u in domain}

    def test_select(self):
        machine = compile_string_formula(sh.equals("x", "y"), AB).fsa
        self.assert_roundtrip(Select(Rel("R1", 2), machine))

    def test_nested_projection_of_select(self):
        machine = compile_string_formula(
            sh.prefix_of("x", "y"), AB, variables=("x", "y")
        ).fsa
        expr = Project(Select(Product(Rel("R2", 1), Rel("R2", 1)), machine), (0,))
        self.assert_roundtrip(expr)
