"""Storage-level ``apply_delta``: in-memory, n-gram, staleness guard."""

import pickle

import pytest

from repro.errors import ArityError
from repro.observability import Tracer, activate
from repro.storage import InMemoryStorage, NGramIndexStorage

ROWS = [("gcgc",), ("acgt",), ("ttag",)]


def _candidate_rows(store, column, factor):
    ids = store.candidates(column, factor)
    assert ids is not None
    return set(store.rows_for(ids))


class TestInMemoryApplyDelta:
    def test_applies_deletes_then_inserts(self):
        store = InMemoryStorage([("a",), ("b",)])
        updated = store.apply_delta(frozenset({("c",)}), frozenset({("a",)}))
        assert updated.tuples == {("b",), ("c",)}
        assert store.tuples == {("a",), ("b",)}

    def test_net_noop_returns_self(self):
        store = InMemoryStorage([("a",)])
        assert store.apply_delta(frozenset({("a",)}), frozenset()) is store
        assert store.apply_delta(frozenset(), frozenset({("zz",)})) is store


class TestNGramApplyDelta:
    def test_insert_updates_rows_and_candidates(self):
        store = NGramIndexStorage.build(ROWS, n=2)
        updated = store.apply_delta(frozenset({("gcaa",)}), frozenset())
        assert updated.tuples == frozenset(ROWS) | {("gcaa",)}
        assert updated.size() == 4
        assert updated.contains(("gcaa",))
        assert _candidate_rows(updated, 0, "gc") >= {("gcgc",), ("gcaa",)}
        # The parent is untouched.
        assert store.size() == 3
        assert not store.contains(("gcaa",))

    def test_delete_tombstones_candidates(self):
        store = NGramIndexStorage.build(ROWS, n=2)
        updated = store.apply_delta(frozenset(), frozenset({("gcgc",)}))
        assert updated.tuples == frozenset(ROWS) - {("gcgc",)}
        assert ("gcgc",) not in _candidate_rows(updated, 0, "cg")
        assert _candidate_rows(updated, 0, "cg") == {("acgt",)}

    def test_delete_then_reinsert_resurrects_the_row(self):
        store = NGramIndexStorage.build(ROWS, n=2)
        gone = store.apply_delta(frozenset(), frozenset({("acgt",)}))
        back = gone.apply_delta(frozenset({("acgt",)}), frozenset())
        assert back.tuples == frozenset(ROWS)
        assert ("acgt",) in _candidate_rows(back, 0, "cg")

    def test_chained_deltas_compose(self):
        store = NGramIndexStorage.build(ROWS, n=2)
        current = store
        current = current.apply_delta(frozenset({("aacc",)}), frozenset())
        current = current.apply_delta(frozenset(), frozenset({("ttag",)}))
        current = current.apply_delta(frozenset({("ttgg",)}), frozenset())
        expect = (frozenset(ROWS) | {("aacc",), ("ttgg",)}) - {("ttag",)}
        assert current.tuples == expect
        assert sorted(current.scan()) == sorted(expect)
        assert current.size() == len(expect)

    def test_net_noop_returns_self(self):
        store = NGramIndexStorage.build(ROWS, n=2)
        assert store.apply_delta(
            frozenset({("gcgc",)}), frozenset()
        ) is store
        assert store.apply_delta(
            frozenset(), frozenset({("zzzz-not-there",)})
        ) is store

    def test_arity_mismatch_raises(self):
        store = NGramIndexStorage.build(ROWS, n=2)
        with pytest.raises(ArityError):
            store.apply_delta(frozenset({("a", "b")}), frozenset())

    def test_mutated_instance_pickles_canonically(self):
        store = NGramIndexStorage.build(ROWS, n=2)
        mutated = store.apply_delta(
            frozenset({("ccgg",)}), frozenset({("ttag",)})
        )
        clone = pickle.loads(pickle.dumps(mutated))
        assert clone.tuples == mutated.tuples
        assert _candidate_rows(clone, 0, "cc") == {("ccgg",)}


class TestStalenessGuard:
    """A mutated artifact-backed index never serves pre-mutation data."""

    def test_overwritten_artifact_falls_back_to_live_postings(self, tmp_path):
        path = tmp_path / "R.ngx"
        NGramIndexStorage.build(ROWS, n=2).write(path)
        opened = NGramIndexStorage.open(path)
        mutated = opened.apply_delta(
            frozenset({("gcaa",)}), frozenset({("gcgc",)})
        )
        # The on-disk artifact changes under the mutated instance.
        NGramIndexStorage.build([("tttt",), ("aaaa",)], n=2).write(path)
        tracer = Tracer()
        with activate(tracer):
            found = _candidate_rows(mutated, 0, "gc")
        assert found == {("gcaa",)}
        assert ("gcgc",) not in found
        assert tracer.counters.get("index.stale_fallback", 0) >= 1
        # Full row access also reflects the delta, not the new artifact.
        assert mutated.tuples == (frozenset(ROWS) | {("gcaa",)}) - {
            ("gcgc",)
        }

    def test_intact_artifact_probes_without_fallback(self, tmp_path):
        path = tmp_path / "R.ngx"
        NGramIndexStorage.build(ROWS, n=2).write(path)
        mutated = NGramIndexStorage.open(path).apply_delta(
            frozenset({("gcaa",)}), frozenset()
        )
        tracer = Tracer()
        with activate(tracer):
            found = _candidate_rows(mutated, 0, "gc")
        assert found >= {("gcgc",), ("gcaa",)}
        assert tracer.counters.get("index.stale_fallback", 0) == 0
