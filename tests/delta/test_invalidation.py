"""Dependency-scoped cache invalidation: evict only what an update touched."""

from repro.core import shorthands as sh
from repro.core.alphabet import AB
from repro.core.query import Query
from repro.core.syntax import And, lift, rel
from repro.delta import Delta
from repro.engine import QueryEngine
from repro.engine.caches import KeyedCache
from repro.observability import Tracer
from repro.workloads.generators import example_database


class TestKeyedCacheDependencies:
    def test_tagged_entries_evict_on_matching_relation(self):
        cache = KeyedCache("demo")
        cache.get_or_compute("a", lambda: 1, depends=(("R", 3),))
        cache.get_or_compute("b", lambda: 2, depends=(("S", 1),))
        evicted = cache.invalidate_relations(["R"])
        assert evicted == 1
        assert cache.stats.invalidated == 1
        # The R-tagged entry recomputes; the S-tagged one is served.
        calls = []
        cache.get_or_compute("a", lambda: calls.append("a") or 1)
        cache.get_or_compute("b", lambda: calls.append("b") or 2)
        assert calls == ["a"]

    def test_untagged_entries_are_never_invalidated(self):
        cache = KeyedCache("demo")
        cache.get_or_compute("pure", lambda: 42)
        assert cache.invalidate_relations(["R", "S"]) == 0
        assert cache.get_or_compute("pure", lambda: -1) == 42

    def test_store_accepts_dependencies(self):
        cache = KeyedCache("demo")
        cache.store("k", "v", depends=(("R", 1),))
        assert cache.invalidate_relations(["R"]) == 1

    def test_unrelated_names_evict_nothing(self):
        cache = KeyedCache("demo")
        cache.store("k", "v", depends=(("R", 1),))
        assert cache.invalidate_relations(["S"]) == 0
        assert cache.stats.invalidated == 0


def _join_query():
    return Query(
        ("x", "y"),
        And(rel("R1", "x", "y"), lift(sh.prefix_of("x", "y"))),
        AB,
    )


def _single_query():
    return Query(("x",), rel("R2", "x"), AB)


class TestSessionInvalidation:
    def test_update_evicts_dependent_but_not_pure_entries(self):
        db = example_database(AB, seed=5, size=4, max_length=2)
        session = QueryEngine(tracer=Tracer())
        session.evaluate(_join_query(), db, length=2, engine="planner")
        session.evaluate(_single_query(), db, length=2, engine="planner")
        compile_misses = session.trace_report().caches["compile"]["misses"]
        db2 = session.apply_delta(
            db, Delta.of(inserts={"R1": [("b", "bb")]})
        )
        assert db2 is not db
        caches = session.trace_report().caches
        # The R1-dependent plan entries were evicted ...
        assert caches["ir"]["invalidated"] >= 1
        # ... while the pure machine cache was never touched: replaying
        # both queries against the new version compiles nothing new.
        assert caches["compile"].get("invalidated", 0) == 0
        session.evaluate(_join_query(), db2, length=2, engine="planner")
        session.evaluate(_single_query(), db2, length=2, engine="planner")
        assert (
            session.trace_report().caches["compile"]["misses"]
            == compile_misses
        ), "compiled machines should survive every update"

    def test_invalidation_counters_reach_the_tracer(self):
        db = example_database(AB, seed=5, size=4, max_length=2)
        session = QueryEngine(tracer=Tracer())
        session.evaluate(_join_query(), db, length=2, engine="planner")
        session.apply_delta(db, Delta.of(inserts={"R1": [("b", "bb")]}))
        counters = session.tracer.counters
        assert counters.get("delta.applied") == 1
        assert any(
            name.startswith("cache.invalidate.") for name in counters
        ), f"no invalidation counters in {sorted(counters)}"

    def test_evaluation_answers_survive_invalidation(self):
        db = example_database(AB, seed=7, size=4, max_length=2)
        session = QueryEngine()
        query = _join_query()
        session.evaluate(query, db, length=2, engine="planner")
        db2 = session.apply_delta(
            db, Delta.of(inserts={"R1": [("a", "ab")]})
        )
        warm = session.evaluate(query, db2, length=2, engine="planner")
        fresh = QueryEngine().evaluate(query, db2, length=2, engine="planner")
        assert warm == fresh
        assert ("a", "ab") in warm
