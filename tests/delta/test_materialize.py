"""Materialized answers: version-exact hits, per-branch maintenance."""

from repro.core import shorthands as sh
from repro.core.alphabet import AB
from repro.core.database import Database
from repro.core.query import Query
from repro.core.syntax import And, Not, exists, f_or, lift, rel
from repro.delta import Delta
from repro.engine import QueryEngine
from repro.observability import Tracer
from repro.workloads.generators import example_database


def _join_query():
    return Query(
        ("x", "y"),
        And(rel("R1", "x", "y"), lift(sh.prefix_of("x", "y"))),
        AB,
    )


def _union_query():
    return Query(
        ("x",), f_or(rel("R2", "x"), rel("R1", "x", "x")), AB
    )


def _oracle(query, db, cap):
    return QueryEngine().evaluate(query, db, length=cap, engine="planner")


class TestMaterializedLookup:
    def test_second_evaluation_is_a_version_hit(self):
        db = example_database(AB, seed=11, size=4, max_length=2)
        session = QueryEngine()
        query = _join_query()
        first = session.evaluate(query, db, length=2, materialize=True)
        second = session.evaluate(query, db, length=2, materialize=True)
        assert first == second == _oracle(query, db, 2)
        caches = session.trace_report().caches
        assert caches["materialize"]["hits"] == 1
        assert caches["materialize"]["misses"] == 1

    def test_answers_do_not_depend_on_the_flag(self):
        db = example_database(AB, seed=11, size=4, max_length=2)
        session = QueryEngine()
        query = _union_query()
        plain = session.evaluate(query, db, length=2)
        materialized = session.evaluate(query, db, length=2, materialize=True)
        assert plain == materialized

    def test_different_versions_never_hit_each_other(self):
        db = example_database(AB, seed=11, size=4, max_length=2)
        other = Database(
            AB, {name: set(db.relation(name)) for name in db.relation_names}
        )
        session = QueryEngine()
        query = _union_query()
        a = session.evaluate(query, db, length=2, materialize=True)
        b = session.evaluate(query, other, length=2, materialize=True)
        assert a == b
        assert session.trace_report().caches["materialize"]["hits"] == 0


class TestIncrementalMaintenance:
    def test_insert_is_maintained_semi_naively(self):
        db = example_database(AB, seed=11, size=4, max_length=2)
        session = QueryEngine(tracer=Tracer())
        query = _join_query()
        session.evaluate(query, db, length=2, materialize=True)
        delta = Delta.of(inserts={"R1": [("a", "ab")]})
        db2 = session.apply_delta(db, delta)
        maintained = session.evaluate(query, db2, length=2, materialize=True)
        assert maintained == _oracle(query, db2, 2)
        assert ("a", "ab") in maintained
        counters = session.tracer.counters
        assert counters.get("delta.materialize.maintained", 0) >= 1
        assert counters.get("delta.materialize.branch_semi_naive", 0) >= 1
        # Maintenance already repaired the entry: the post-update
        # evaluation was a hit, not a recomputation.
        assert session.trace_report().caches["materialize"]["hits"] >= 1

    def test_delete_recomputes_the_affected_branch(self):
        db = Database(
            AB,
            {
                "R1": [("a", "ab"), ("b", "bb")],
                "R2": [("a",), ("b",), ("bb",)],
            },
        )
        session = QueryEngine(tracer=Tracer())
        query = _union_query()
        session.evaluate(query, db, length=2, materialize=True)
        # Deleting a short row keeps the cap (len 1 < max recorded).
        delta = Delta.of(deletes={"R2": [("a",)]})
        db2 = session.apply_delta(db, delta)
        maintained = session.evaluate(query, db2, length=2, materialize=True)
        assert maintained == _oracle(query, db2, 2)
        assert ("a",) not in maintained
        counters = session.tracer.counters
        assert counters.get("delta.materialize.branch_recomputed", 0) >= 1

    def test_untouched_relations_skip_branches(self):
        db = example_database(AB, seed=11, size=4, max_length=2)
        session = QueryEngine(tracer=Tracer())
        query = _union_query()  # branches over R2 and R1
        session.evaluate(query, db, length=2, materialize=True)
        present = set(db.relation("R2"))
        row = next(
            (s,)
            for s in ("ba", "ab", "aa", "bb", "a", "b")
            if (s,) not in present
        )
        db2 = session.apply_delta(db, Delta.of(inserts={"R2": [row]}))
        assert db2 is not db
        assert session.evaluate(
            query, db2, length=2, materialize=True
        ) == _oracle(query, db2, 2)
        assert (
            session.tracer.counters.get(
                "delta.materialize.branch_skipped", 0
            )
            >= 1
        )


class TestFallbacks:
    def test_certified_cap_move_drops_the_entry(self):
        db = Database(AB, {"R1": [("a", "ab")], "R2": [("a",)]})
        session = QueryEngine(tracer=Tracer())
        query = _join_query()
        # No explicit length: the cap is certified from the data.
        first = session.evaluate(query, db, materialize=True)
        assert first == QueryEngine().evaluate(query, db)
        # A longer string than any recorded maximum may move the cap.
        delta = Delta.of(inserts={"R1": [("ab", "abb")]})
        db2 = session.apply_delta(db, delta)
        assert (
            session.tracer.counters.get("delta.materialize.cap_dropped", 0)
            == 1
        )
        again = session.evaluate(query, db2, materialize=True)
        assert again == QueryEngine().evaluate(query, db2)
        assert ("ab", "abb") in again

    def test_naive_plans_fall_back_to_from_scratch(self):
        db = example_database(AB, seed=11, size=3, max_length=2)
        session = QueryEngine(tracer=Tracer())
        # Unbound negation forces a NaivePlan root.
        query = Query(
            ("x",), exists("y", Not(rel("R1", "x", "y"))), AB
        )
        got = session.evaluate(query, db, length=1, materialize=True)
        assert got == QueryEngine().evaluate(query, db, length=1)
        counters = session.tracer.counters
        assert counters.get("delta.materialize.naive_fallback", 0) == 1
        # Nothing was stored: a repeat evaluation is another miss.
        session.evaluate(query, db, length=1, materialize=True)
        assert session.trace_report().caches["materialize"]["hits"] == 0
