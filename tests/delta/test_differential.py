"""Differential proof: incremental evaluation never changes answers.

Random interleavings of inserts, deletes and queries (hypothesis-driven,
across every workload generator) must leave a warm session — deltas
applied via ``apply_delta``, answers maintained via ``materialize=True``
— byte-identical to from-scratch evaluation on a fresh session, for
every engine; a fixed interleaving then sweeps the full engine ×
kernel-mode × worker matrix.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import shorthands as sh
from repro.core.alphabet import AB
from repro.core.query import Query
from repro.core.syntax import And, Not, exists, f_or, lift, rel
from repro.delta import Delta
from repro.engine import QueryEngine
from repro.fsa.kernel import KERNEL_MODES
from tests.storage.test_differential import GENERATORS

ENGINES = ("naive", "planner", "algebra", "auto")
WORKER_COUNTS = (1, 2, 4)
CAP = 2


def _queries():
    yield "join-filter", Query(
        ("x", "y"),
        And(
            lift(sh.prefix_of("x", "y")),
            And(rel("R1", "x", "y"), Not(rel("R2", "y"))),
        ),
        AB,
    )
    yield "disjunction", Query(
        ("x",), f_or(rel("R2", "x"), rel("R1", "x", "x")), AB
    )
    yield "nested-exists", Query(
        ("x",),
        exists("y", And(rel("R1", "x", "y"), rel("R2", "y"))),
        AB,
    )


QUERIES = list(_queries())


def _to_delta(db, op):
    """One drawn operation as a concrete delta against ``db``."""
    kind, name, payload = op
    if kind == "insert":
        return Delta.of(inserts={name: [payload]})
    rows = sorted(db.relation(name))
    if not rows:
        return Delta()
    return Delta.of(deletes={name: [rows[payload % len(rows)]]})


def _check(warm, oracle, db, engines, **evaluate_kwargs):
    for qname, query in QUERIES:
        expected = oracle.evaluate(query, db, length=CAP, engine="planner")
        maintained = warm.evaluate(query, db, length=CAP, materialize=True)
        assert maintained == expected, (
            f"{qname}: materialized answer diverged from from-scratch"
        )
        for engine in engines:
            got = warm.evaluate(
                query, db, length=CAP, engine=engine, **evaluate_kwargs
            )
            assert got == expected, (
                f"{qname}: engine={engine} diverged after updates"
            )


_VALUE = st.text(alphabet="ab", min_size=0, max_size=2)

#: One mutation step: an insert of a drawn row, or a delete of the
#: k-th currently-present row (resolved at application time, so
#: deletes actually hit data).
_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), st.just("R1"), st.tuples(_VALUE, _VALUE)),
        st.tuples(st.just("insert"), st.just("R2"), st.tuples(_VALUE)),
        st.tuples(
            st.just("delete"),
            st.sampled_from(["R1", "R2"]),
            st.integers(min_value=0, max_value=7),
        ),
    ),
    min_size=1,
    max_size=5,
)


@settings(max_examples=5, deadline=None)
@pytest.mark.parametrize(
    "generator", sorted(GENERATORS), ids=sorted(GENERATORS)
)
@given(seed=st.integers(min_value=0, max_value=10_000), ops=_OPS)
def test_interleavings_agree_on_every_workload_generator(
    generator, seed, ops
):
    db = GENERATORS[generator](seed)
    warm = QueryEngine()
    oracle = QueryEngine()
    # Materialize every query up front so the interleaving exercises
    # maintenance, not just recomputation.
    for _, query in QUERIES:
        warm.evaluate(query, db, length=CAP, materialize=True)
    for op in ops:
        delta = _to_delta(db, op)
        db = warm.apply_delta(db, delta)
        _check(warm, oracle, db, engines=("planner",))
    _check(warm, oracle, db, engines=ENGINES)


#: A fixed interleaving mixing inserts, deletes and a resurrect, used
#: for the exhaustive engine × kernel × worker matrix below.
_FIXED_OPS = (
    ("insert", "R1", ("a", "ab")),
    ("delete", "R2", 0),
    ("insert", "R2", ("ba",)),
    ("delete", "R1", 1),
    ("insert", "R2", ("ba",)),
)


@pytest.mark.parametrize("workers", WORKER_COUNTS)
@pytest.mark.parametrize("kernel_mode", KERNEL_MODES)
def test_fixed_interleaving_full_matrix(kernel_mode, workers):
    db = GENERATORS["example"](3)
    warm = QueryEngine(kernel_mode=kernel_mode)
    oracle = QueryEngine(kernel_mode=kernel_mode)
    for _, query in QUERIES:
        warm.evaluate(query, db, length=CAP, materialize=True)
    for op in _FIXED_OPS:
        db = warm.apply_delta(db, _to_delta(db, op))
        _check(
            warm, oracle, db, engines=ENGINES, workers=workers, shards=3
        )
