"""Delta/DeltaLog semantics and Database versioning under updates."""

import pytest

from repro.core.alphabet import AB
from repro.core.database import Database
from repro.delta import Delta, DeltaLog
from repro.errors import AlphabetError, ArityError


@pytest.fixture()
def db():
    return Database(AB, {"R1": [("a", "b")], "R2": [("a",), ("bb",)]})


class TestDeltaCanonicalization:
    def test_insert_wins_over_delete_of_the_same_row(self):
        delta = Delta(
            inserts=(("R", ("a",)),), deletes=(("R", ("a",)), ("R", ("b",)))
        )
        assert delta.inserts == (("R", ("a",)),)
        assert delta.deletes == (("R", ("b",)),)

    def test_sides_are_sorted_and_deduplicated(self):
        delta = Delta(
            inserts=(("S", ("b",)), ("R", ("a",)), ("R", ("a",)))
        )
        assert delta.inserts == (("R", ("a",)), ("S", ("b",)))

    def test_of_relations_size_and_emptiness(self):
        delta = Delta.of(
            inserts={"R": [("a",)]}, deletes={"S": [("b",), ("c",)]}
        )
        assert delta.relations() == ("R", "S")
        assert delta.size == 3
        assert delta.inserts_for("R") == {("a",)}
        assert delta.deletes_for("S") == {("b",), ("c",)}
        assert bool(delta)
        assert not Delta()
        assert Delta().is_empty

    def test_deltas_are_hashable_values(self):
        one = Delta.of(inserts={"R": [("a",)]})
        two = Delta(inserts=(("R", ("a",)),))
        assert one == two
        assert hash(one) == hash(two)


class TestDeltaLog:
    def test_last_operation_wins_per_row(self):
        log = DeltaLog()
        delta = (
            log.insert("R", ("a",))
            .delete("R", ("a",))
            .insert("R", ("b",))
            .build()
        )
        assert delta.deletes == (("R", ("a",)),)
        assert delta.inserts == (("R", ("b",)),)

    def test_extend_replays_a_delta(self):
        log = DeltaLog().insert("R", ("a",))
        log.extend(Delta.of(deletes={"R": [("a",)]}))
        assert log.build().deletes_for("R") == {("a",)}

    def test_clear_and_len(self):
        log = DeltaLog().insert("R", ("a",)).delete("S", ("b",))
        assert len(log) == 2
        log.clear()
        assert len(log) == 0
        assert log.build().is_empty


class TestDatabaseVersioning:
    def test_insert_returns_a_new_version(self, db):
        db2 = db.insert("R2", ("ab",))
        assert ("ab",) in db2.relation("R2")
        assert ("ab",) not in db.relation("R2")
        assert db2.lineage == db.lineage
        assert db2.relation_version("R2") > db.relation_version("R2")
        assert db2.relation_version("R1") == db.relation_version("R1")

    def test_delete_and_noop_delete(self, db):
        db2 = db.delete("R2", ("a",))
        assert ("a",) not in db2.relation("R2")
        assert db.delete("R2", ("zz-not-there",)) is db

    def test_apply_is_atomic_across_relations(self, db):
        delta = Delta.of(
            inserts={"R1": [("b", "b")]}, deletes={"R2": [("a",)]}
        )
        db2 = db.apply(delta)
        assert ("b", "b") in db2.relation("R1")
        assert ("a",) not in db2.relation("R2")
        assert db2.relation_version("R1") != db.relation_version("R1")
        assert db2.relation_version("R2") != db.relation_version("R2")

    def test_empty_and_net_noop_deltas_return_self(self, db):
        assert db.apply(Delta()) is db
        assert db.apply(Delta.of(inserts={"R2": [("a",)]})) is db

    def test_version_counters_are_monotone(self, db):
        versions = [db.relation_version("R2")]
        current = db
        for row in (("ba",), ("ab",)):
            current = current.insert("R2", row)
            versions.append(current.relation_version("R2"))
        assert versions == sorted(versions)
        assert len(set(versions)) == len(versions)

    def test_distinct_databases_have_distinct_lineages(self, db):
        other = Database(AB, {"R2": [("a",)]})
        assert other.lineage != db.lineage

    def test_insert_validates_arity_and_alphabet(self, db):
        with pytest.raises(ArityError):
            db.insert("R2", ("a", "b"))
        with pytest.raises(AlphabetError):
            db.insert("R2", ("xyz",))

    def test_insert_into_unknown_relation_creates_it(self, db):
        db2 = db.insert("R9", ("ab",))
        assert set(db2.relation("R9")) == {("ab",)}
        assert db2.relation_version("R9") > 0
