"""Service update ops: wire semantics, exclusivity, admission, draining."""

import asyncio
import json

import pytest

from repro.core.alphabet import AB
from repro.core.database import Database
from repro.errors import AdmissionError, ServiceProtocolError
from repro.service import QueryService, ServiceClient, serve_in_thread
from repro.service.protocol import ERR_DRAINING


@pytest.fixture()
def db():
    return Database(
        AB,
        {
            "R1": [("a", "ab"), ("b", "ba")],
            "R2": [("a",), ("ab",), ("b",)],
        },
    )


@pytest.fixture()
def server(db):
    handle = serve_in_thread(db)
    client = ServiceClient(*handle.address)
    yield handle, client
    client.close()
    handle.stop()


class TestUpdateOp:
    def test_update_applies_and_reports_versions(self, server):
        handle, client = server
        before = client.health()
        result = client.update(
            insert={"R2": [("bb",)]}, delete={"R2": [("a",)]}
        )
        assert result["applied"] == 2
        assert result["inserted"] == 1
        assert result["deleted"] == 1
        assert result["lineage"] == before["lineage"]
        assert result["versions"]["R2"] > before["versions"]["R2"]
        assert result["elapsed"] >= 0
        # Subsequent queries see exactly the post-update state.
        assert client.query("R2(x)", ["x"], length=3) == [
            ("ab",), ("b",), ("bb",)
        ]

    def test_update_into_new_relation(self, server):
        _, client = server
        result = client.update(insert={"R3": [("ab", "b", "a")]})
        assert result["versions"]["R3"] > 0
        assert client.query("R3(x, y, z)", ["x", "y", "z"], length=2) == [
            ("ab", "b", "a")
        ]
        assert "R3" in client.health()["relations"]

    def test_health_tracks_versions(self, server):
        _, client = server
        client.update(insert={"R1": [("bb", "b")]})
        doc = client.health()
        assert doc["versions"]["R1"] > 0
        assert set(doc["versions"]) == set(doc["relations"])

    def test_update_counters_reach_stats(self, server):
        _, client = server
        client.update(insert={"R2": [("bb",)]})
        counters = client.stats()["service"]
        assert counters.get("service.op.update") == 1
        assert counters.get("delta.applied") == 1


class TestBatchUpdateOp:
    def test_members_coalesce_last_op_wins(self, server):
        _, client = server
        result = client.batch_update(
            [
                {"insert": {"R2": [("bb",)]}},
                {"delete": {"R2": [("bb",)]}},
                {"insert": {"R1": [("bb", "b")]}},
            ]
        )
        assert result["updates"] == 3
        # insert-then-delete of the same absent row nets out; only the
        # R1 insert survives coalescing.
        assert result["applied"] == 2
        assert list(result["versions"]) == ["R1", "R2"]
        assert client.query("R2(x)", ["x"], length=3) == [
            ("a",), ("ab",), ("b",)
        ]
        assert ("bb", "b") in set(
            client.query("R1(x, y)", ["x", "y"], length=3)
        )

    def test_empty_updates_list_is_malformed(self, server):
        _, client = server
        with pytest.raises(ServiceProtocolError):
            client.batch_update([])


class TestUpdateRejections:
    def test_unknown_relation_in_delete_is_malformed(self, server):
        _, client = server
        with pytest.raises(ServiceProtocolError) as info:
            client.update(delete={"Nope": [("a",)]})
        assert "Nope" in str(info.value)

    def test_empty_delta_is_malformed(self, server):
        _, client = server
        with pytest.raises(ServiceProtocolError):
            client.call("update", {})

    def test_bad_row_shape_is_malformed(self, server):
        _, client = server
        with pytest.raises(ServiceProtocolError):
            client.call("update", {"insert": {"R2": "not-rows"}})
        with pytest.raises(ServiceProtocolError):
            client.call("update", {"insert": {"R2": [[1, 2]]}})

    def test_rejected_update_leaves_the_database_alone(self, server):
        _, client = server
        before = client.health()["versions"]
        with pytest.raises(ServiceProtocolError):
            client.update(delete={"Nope": [("a",)]})
        assert client.health()["versions"] == before


class TestUpdateAdmission:
    def test_oversized_delta_is_rejected_by_cost(self, db):
        handle = serve_in_thread(db, max_cost=1.5)
        try:
            with ServiceClient(*handle.address) as client:
                with pytest.raises(AdmissionError) as info:
                    client.update(
                        insert={"R2": [("aa",), ("bb",), ("ba",)]}
                    )
                assert info.value.reason == "cost-exceeded"
                assert info.value.est_cost == 3.0
                # A small-enough delta still lands.
                assert client.update(insert={"R2": [("aa",)]})[
                    "applied"
                ] == 1
        finally:
            handle.stop()


class TestUpdateDraining:
    def test_draining_rejects_updates(self, db):
        async def scenario():
            service = QueryService(db)
            await service.start()
            service._draining = True
            line = json.dumps(
                {
                    "id": 1,
                    "op": "update",
                    "params": {"insert": {"R2": [["bb"]]}},
                }
            ).encode("utf-8")
            response = await service._handle_line(line)
            await service.drain()
            return response

        response = asyncio.run(scenario())
        assert response["error"]["code"] == ERR_DRAINING
