"""Delta-path tests: types, storage, invalidation, materialization."""
