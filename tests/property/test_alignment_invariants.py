"""Property tests for alignment/transpose invariants (Section 2)."""

from hypothesis import given, settings, strategies as st

from repro.core.alignment import Alignment, Row

_words = st.text(alphabet="ab", max_size=6)
_rows = st.builds(
    lambda string, head: Row(string, min(head, len(string) + 1 if string else 0)),
    _words,
    st.integers(min_value=0, max_value=7),
)


@settings(max_examples=100)
@given(row=_rows)
def test_transposes_never_change_the_string(row):
    alignment = Alignment.from_rows({0: row})
    assert alignment.transpose_left([0]).sigma(0) == row.string
    assert alignment.transpose_right([0]).sigma(0) == row.string


@settings(max_examples=100)
@given(row=_rows)
def test_head_stays_in_range(row):
    alignment = Alignment.from_rows({0: row})
    for _ in range(10):
        alignment = alignment.transpose_left([0])
    limit = len(row.string) + 1 if row.string else 0
    assert alignment.row(0).head <= limit
    for _ in range(20):
        alignment = alignment.transpose_right([0])
    assert alignment.row(0).head >= 0


@settings(max_examples=100)
@given(row=_rows)
def test_left_then_right_is_identity_away_from_ends(row):
    """The transposes are inverse except at the clamping boundaries."""
    alignment = Alignment.from_rows({0: row})
    moved = alignment.transpose_left([0]).transpose_right([0])
    if row.string and row.head <= len(row.string):
        assert moved == alignment
    # at the right end, both transposes clamp: still well defined
    assert moved.sigma(0) == row.string


@settings(max_examples=100)
@given(row=_rows, column=st.integers(min_value=-8, max_value=8))
def test_partial_function_consistency(row, column):
    """A(i, j) is defined exactly on the interval K_i."""
    alignment = Alignment.from_rows({0: row})
    char = alignment.char_at(0, column)
    if char is None:
        assert column not in row.columns
    else:
        assert column in row.columns
        assert char == row.string[row.head - 1 + column]


@settings(max_examples=60)
@given(words=st.lists(_words, min_size=1, max_size=3))
def test_window_chars_after_k_transposes(words):
    """After k left transposes the window shows character k (1-based)."""
    alignment = Alignment.initial(dict(enumerate(words)))
    rows = list(range(len(words)))
    for position in range(1, 5):
        alignment = alignment.transpose_left(rows)
        for index, word in enumerate(words):
            expected = word[position - 1] if position <= len(word) else None
            assert alignment.window_char(index) == expected
