"""Property tests for the classical baselines themselves.

The oracles validate the paper's formulae, so they deserve their own
invariants: metric laws for edit distance, algebraic laws for
shuffle/concatenation/manifold.
"""

from hypothesis import given, settings, strategies as st

from repro.workloads import oracles

_words = st.text(alphabet="ab", max_size=6)


class TestEditDistanceMetric:
    @settings(max_examples=150)
    @given(x=_words, y=_words)
    def test_symmetry(self, x, y):
        assert oracles.edit_distance(x, y) == oracles.edit_distance(y, x)

    @settings(max_examples=150)
    @given(x=_words, y=_words)
    def test_identity(self, x, y):
        assert (oracles.edit_distance(x, y) == 0) == (x == y)

    @settings(max_examples=100)
    @given(x=_words, y=_words, z=_words)
    def test_triangle_inequality(self, x, y, z):
        assert oracles.edit_distance(x, z) <= oracles.edit_distance(
            x, y
        ) + oracles.edit_distance(y, z)

    @settings(max_examples=100)
    @given(x=_words, y=_words)
    def test_length_difference_lower_bound(self, x, y):
        assert oracles.edit_distance(x, y) >= abs(len(x) - len(y))


class TestShuffleLaws:
    @settings(max_examples=100)
    @given(y=_words, z=_words)
    def test_concatenation_is_a_shuffle(self, y, z):
        assert oracles.is_shuffle(y + z, y, z)
        assert oracles.is_shuffle(z + y, y, z)

    @settings(max_examples=100)
    @given(x=_words, y=_words, z=_words)
    def test_shuffle_requires_matching_length(self, x, y, z):
        if len(x) != len(y) + len(z):
            assert not oracles.is_shuffle(x, y, z)

    @settings(max_examples=100)
    @given(y=_words, z=_words)
    def test_shuffle_symmetry(self, y, z):
        for x in (y + z, z + y):
            assert oracles.is_shuffle(x, y, z) == oracles.is_shuffle(x, z, y)


class TestManifoldLaws:
    @settings(max_examples=100)
    @given(y=_words, n=st.integers(min_value=1, max_value=4))
    def test_powers_are_manifolds(self, y, n):
        assert oracles.is_manifold(y * n, y)

    @settings(max_examples=100)
    @given(x=_words, y=_words)
    def test_manifold_implies_prefix(self, x, y):
        if oracles.is_manifold(x, y):
            assert oracles.is_prefix(y, x) or (x == "" and y == "")


class TestTranslationLaws:
    @settings(max_examples=100)
    @given(x=_words)
    def test_translation_is_an_involution(self, x):
        assert oracles.translate_ab(oracles.translate_ab(x)) == x

    @settings(max_examples=100)
    @given(x=_words)
    def test_copy_translation_closure(self, x):
        assert oracles.is_copy_translation(x + oracles.translate_ab(x))
