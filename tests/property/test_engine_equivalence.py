"""Property tests: the two satisfaction engines always agree.

Random string formulae are generated structurally (atoms over two
variables, closed under concatenation, selection and star) and checked
on random inputs: the direct modal checker of
:mod:`repro.core.semantics` and the Theorem 3.1 compiled machine must
produce identical verdicts — the library's central internal
consistency invariant.
"""

from hypothesis import given, settings, strategies as st

from repro.core.alphabet import AB
from repro.core.semantics import check_string_formula
from repro.core.syntax import (
    IsChar,
    IsEmpty,
    SameChar,
    SStar,
    WTrue,
    atom,
    concat,
    left,
    not_empty,
    right,
    union,
)
from repro.fsa.compile import compile_string_formula
from repro.fsa.simulate import accepts

VARS = ("x", "y")

_window_tests = st.sampled_from(
    [
        WTrue(),
        IsChar("x", "a"),
        IsChar("y", "b"),
        IsEmpty("x"),
        IsEmpty("y"),
        SameChar("x", "y"),
        not_empty("x"),
        ~SameChar("x", "y"),
    ]
)

_transposes = st.sampled_from(
    [left("x"), left("y"), left("x", "y"), right("x"), right("y"), left()]
)

_atoms = st.builds(atom, _transposes, _window_tests)


def _formulas(max_depth: int):
    return st.recursive(
        _atoms,
        lambda children: st.one_of(
            st.builds(lambda a, b: concat(a, b), children, children),
            st.builds(lambda a, b: union(a, b), children, children),
            st.builds(SStar, children),
        ),
        max_leaves=max_depth,
    )


_words = st.text(alphabet="ab", max_size=3)


@settings(max_examples=60, deadline=None)
@given(formula=_formulas(4), word_x=_words, word_y=_words)
def test_checker_and_machine_agree(formula, word_x, word_y):
    env = {"x": word_x, "y": word_y}
    direct = check_string_formula(formula, env)
    compiled = compile_string_formula(formula, AB, variables=("x", "y"))
    machine = accepts(compiled.fsa, (word_x, word_y))
    assert direct == machine


@settings(max_examples=30, deadline=None)
@given(formula=_formulas(3))
def test_generation_matches_brute_force(formula):
    """accepted_tuples == brute-force language enumeration."""
    from repro.fsa.generate import accepted_tuples
    from repro.fsa.simulate import language

    compiled = compile_string_formula(formula, AB, variables=("x", "y"))
    assert accepted_tuples(compiled.fsa, max_length=2) == language(
        compiled.fsa, 2
    )


@settings(max_examples=30, deadline=None)
@given(formula=_formulas(3), word_x=_words, word_y=_words)
def test_specialization_preserves_acceptance(formula, word_x, word_y):
    from repro.fsa.specialize import specialize

    compiled = compile_string_formula(formula, AB, variables=("x", "y"))
    whole = accepts(compiled.fsa, (word_x, word_y))
    narrowed = specialize(compiled.fsa, {0: word_x})
    assert accepts(narrowed, (word_y,)) == whole


@settings(max_examples=30, deadline=None)
@given(formula=_formulas(3), word_x=_words, word_y=_words)
def test_minimization_preserves_acceptance(formula, word_x, word_y):
    from repro.fsa.minimize import bisimulation_quotient

    compiled = compile_string_formula(formula, AB, variables=("x", "y"))
    smaller = bisimulation_quotient(compiled.fsa)
    assert accepts(smaller, (word_x, word_y)) == accepts(
        compiled.fsa, (word_x, word_y)
    )
