"""Property tests for Theorem 6.1 over random regular expressions."""

from hypothesis import given, settings, strategies as st

from repro.core.alphabet import AB
from repro.core.semantics import check_string_formula
from repro.expressive.regular import (
    RChar,
    RConcat,
    REpsilon,
    RStar,
    RUnion,
    regex_matches,
    regex_to_formula,
)

_regexes = st.recursive(
    st.one_of(
        st.sampled_from([RChar("a"), RChar("b"), REpsilon()]),
    ),
    lambda children: st.one_of(
        st.builds(lambda a, b: RConcat((a, b)), children, children),
        st.builds(lambda a, b: RUnion((a, b)), children, children),
        st.builds(RStar, children),
    ),
    max_leaves=5,
)

_words = st.text(alphabet="ab", max_size=4)


@settings(max_examples=80, deadline=None)
@given(regex=_regexes, word=_words)
def test_regex_formula_equivalence(regex, word):
    """Theorem 6.1: the translated formula decides the same language."""
    formula = regex_to_formula(regex, "x")
    assert check_string_formula(formula, {"x": word}) == regex_matches(
        regex, word
    )


@settings(max_examples=50, deadline=None)
@given(regex=_regexes, word=_words)
def test_regex_engine_against_stdlib(regex, word):
    import re as stdlib_re

    # Render ε as an explicit empty group: plain stripping corrupts
    # patterns like "aε*" (→ "a*", a different language).
    pattern = str(regex).replace("ε", "(?:)")
    compiled = stdlib_re.compile(f"(?:{pattern})$")
    assert regex_matches(regex, word) == bool(compiled.match(word))


@settings(max_examples=40, deadline=None)
@given(regex=_regexes)
def test_round_trip_through_machine(regex):
    from repro.expressive.regular import formula_language_via_nfa, regex_language

    formula = regex_to_formula(regex, "x")
    assert formula_language_via_nfa(formula, AB, 3) == regex_language(
        regex, AB, 3
    )
