"""Doctest the fenced ``python`` examples in docs/*.md and README.md.

Documentation drifts unless it executes.  This module extracts every
fenced ``python`` code block containing doctest prompts (``>>>``) from
the markdown handbook pages and the README and runs them through
:mod:`doctest`.  Within one file the blocks share a globals namespace
(``clear_globs=False``), so a page can build up a session across
blocks exactly as a reader would at the REPL.

Blocks without ``>>>`` prompts — illustrative snippets, shell
transcripts, JSON examples — are deliberately skipped: only examples
that claim concrete output are held to it.
"""

from __future__ import annotations

import doctest
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent

#: The markdown files whose examples must execute.
DOCUMENTS = sorted((ROOT / "docs").glob("*.md")) + [ROOT / "README.md"]


def _python_blocks(text: str) -> list[tuple[int, str]]:
    """``(start_line, source)`` for each fenced ``python`` block."""
    blocks: list[tuple[int, str]] = []
    lines = text.splitlines()
    inside = False
    current: list[str] = []
    start_line = 0
    for number, line in enumerate(lines, start=1):
        stripped = line.strip()
        if not inside and stripped.startswith("```python"):
            inside = True
            current = []
            start_line = number + 1
        elif inside and stripped == "```":
            inside = False
            blocks.append((start_line, "\n".join(current)))
        elif inside:
            current.append(line)
    return blocks


def _doctest_blocks(path: Path) -> list[tuple[int, str]]:
    text = path.read_text(encoding="utf-8")
    return [
        (lineno, block)
        for lineno, block in _python_blocks(text)
        if ">>>" in block
    ]


@pytest.mark.parametrize(
    "path", DOCUMENTS, ids=lambda path: str(path.relative_to(ROOT))
)
def test_fenced_examples_execute(path):
    """Every ``>>>`` example in the document produces its shown output."""
    blocks = _doctest_blocks(path)
    if not blocks:
        pytest.skip(f"{path.name} has no doctest-style examples")
    parser = doctest.DocTestParser()
    runner = doctest.DocTestRunner(
        optionflags=doctest.ELLIPSIS | doctest.NORMALIZE_WHITESPACE
    )
    globs: dict = {}
    for lineno, block in blocks:
        test = parser.get_doctest(
            block, globs, f"{path.name}:{lineno}", str(path), lineno
        )
        # carry the namespace forward so later blocks in the same file
        # continue the session started by earlier ones
        runner.run(test, clear_globs=False)
        globs.update(test.globs)
    assert runner.failures == 0, (
        f"{runner.failures} doctest failure(s) in {path} "
        "(see captured stdout for details)"
    )


def test_extractor_sees_the_handbook_examples():
    """Guard the extractor itself: the handbook pages must contribute."""
    counted = {
        path.name: len(_doctest_blocks(path)) for path in DOCUMENTS
    }
    assert counted.get("architecture.md", 0) >= 1
    assert counted.get("observability.md", 0) >= 1
    assert counted.get("service.md", 0) >= 1
