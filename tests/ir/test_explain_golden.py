"""Golden-file tests for ``--explain``: the output is a contract.

Each case renders ``python -m repro.cli query --explain`` for a fixed
database/query and compares byte-for-byte against a checked-in golden
file.  Regenerate after an intentional change with::

    REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/ir/test_explain_golden.py
"""

import json
import os
from pathlib import Path

import pytest

from repro.cli import main

GOLDEN = Path(__file__).resolve().parent / "golden"

DB = {
    "R1": [["a", "b"], ["ab", "ab"], ["b", "b"]],
    "R2": [["ab"], ["b"], ["ba"]],
}

CASES = {
    "disjunction": dict(
        head="x", length="2", formula="R2(x) | R1(x, x)"
    ),
    "conjunctive-selection": dict(
        head="x,y",
        length="3",
        formula="R1(x, y) & R2(y) & [x,y]l(x = y)* . [x,y]l(x = y = eps)",
    ),
    "naive-fallback": dict(
        head="x", length="2", formula="!(exists y: R1(x, y))"
    ),
    "certified-bound": dict(head="x", length=None, formula="R2(x)"),
}


@pytest.fixture()
def db_path(tmp_path):
    path = tmp_path / "db.json"
    path.write_text(json.dumps(DB))
    return str(path)


@pytest.mark.parametrize("case", sorted(CASES), ids=sorted(CASES))
def test_explain_output_matches_golden(case, db_path, capsys):
    spec = CASES[case]
    argv = ["query", "--alphabet", "ab", "--db", db_path, "--head", spec["head"]]
    if spec["length"] is not None:
        argv += ["--length", spec["length"]]
    argv += ["--explain", spec["formula"]]
    assert main(argv) == 0
    got = capsys.readouterr().out
    golden = GOLDEN / f"{case}.txt"
    if os.environ.get("REGEN_GOLDEN"):
        golden.write_text(got)
    assert golden.exists(), f"golden file missing: {golden}"
    assert got == golden.read_text(), (
        f"--explain drifted from {golden.name}; if intentional, "
        "regenerate with REGEN_GOLDEN=1"
    )


def test_explain_is_deterministic_across_sessions(db_path, capsys):
    spec = CASES["disjunction"]
    argv = [
        "query", "--alphabet", "ab", "--db", db_path,
        "--head", spec["head"], "--length", spec["length"],
        "--explain", spec["formula"],
    ]
    assert main(argv) == 0
    first = capsys.readouterr().out
    assert main(argv) == 0
    second = capsys.readouterr().out
    assert first == second
