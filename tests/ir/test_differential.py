"""Differential proof: optimized plans never change answers.

Two regimes, both compared against :func:`evaluate_naive` run on the
**original, unnormalized** formula — the one engine path that bypasses
every :mod:`repro.ir` rewrite:

* hypothesis-driven: random databases from every
  ``workloads/generators.py`` generator, random caps, every query
  shape — the plan route (``build_query_plan`` + ``execute_plan``) and
  the optimized algebra route must both match the oracle;
* worker matrix: the same shapes through the parallel engine at
  workers ∈ {1, 2, 4}, forcing real pool dispatch.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.algebra.evaluate import evaluate_expression
from repro.core import shorthands as sh
from repro.core.alphabet import AB, Alphabet
from repro.core.query import Query
from repro.core.semantics import evaluate_naive
from repro.core.syntax import And, Not, exists, f_or, lift, rel
from repro.engine import ParallelEngine, QueryEngine
from repro.ir import CostModel, build_query_plan
from repro.ir.execute import execute_plan
from repro.workloads.generators import (
    copy_language_strings,
    example_database,
    manifold_strings,
    near_duplicates,
    uniform_strings,
    with_planted_motif,
)

DNA = Alphabet("acgt")

#: Every generator in workloads/generators.py, as a seeded factory.
GENERATORS = {
    "uniform": lambda seed: example_database(
        AB,
        singles=uniform_strings(AB, 4, 2, seed=seed),
        seed=seed,
        size=3,
        max_length=2,
    ),
    # All factories keep strings within length 2 so the truncation
    # domain Σ^≤cap (cap ≥ 2) always covers the database — exactly the
    # regime where the naive oracle and the join-based plans must agree.
    "motif": lambda seed: example_database(
        AB,
        singles=with_planted_motif(AB, "b", count=4, max_length=1, seed=seed),
        seed=seed,
        size=3,
        max_length=2,
    ),
    "near-dup": lambda seed: example_database(
        AB,
        singles=near_duplicates(AB, "a", count=4, max_edits=1, seed=seed),
        seed=seed,
        size=3,
        max_length=2,
    ),
    "copy-lang": lambda seed: example_database(
        AB,
        singles=copy_language_strings(count=4, max_half_length=1, seed=seed),
        seed=seed,
        size=3,
        max_length=2,
    ),
    "manifold": lambda seed: example_database(
        AB,
        pairs=manifold_strings(
            AB, count=3, max_base_length=1, max_repeats=2, seed=seed
        ),
        seed=seed,
        size=3,
        max_length=2,
    ),
    "example": lambda seed: example_database(
        AB, seed=seed, size=3, max_length=2
    ),
}


def _queries(alphabet):
    """The query shapes the IR layer claims to optimize."""
    yield "disjunction", Query(
        ("x",), f_or(rel("R2", "x"), rel("R1", "x", "x")), alphabet
    )
    yield "disjunction-partial-heads", Query(
        ("x", "y"),
        f_or(rel("R1", "x", "y"), And(rel("R2", "x"), rel("R2", "y"))),
        alphabet,
    )
    yield "nested-exists", Query(
        ("x",),
        exists(
            "y",
            And(
                rel("R1", "x", "y"),
                exists("z", And(rel("R2", "z"), rel("R1", "z", "y"))),
            ),
        ),
        alphabet,
    )
    yield "exists-over-disjunction", Query(
        ("x",),
        exists("y", f_or(rel("R1", "x", "y"), rel("R1", "y", "x"))),
        alphabet,
    )
    yield "conjunctive-selection", Query(
        ("x", "y"),
        And(
            lift(sh.prefix_of("x", "y")),
            And(rel("R1", "x", "y"), Not(rel("R2", "y"))),
        ),
        alphabet,
    )


QUERIES = list(_queries(AB))
_SESSION = QueryEngine()


def _oracle(query, db, cap):
    domain = tuple(db.alphabet.strings(cap))
    return evaluate_naive(query.formula, query.head, db, domain)


@settings(max_examples=8, deadline=None)
@pytest.mark.parametrize(
    "generator", sorted(GENERATORS), ids=sorted(GENERATORS)
)
@given(seed=st.integers(min_value=0, max_value=10_000), cap=st.integers(2, 3))
def test_plan_route_matches_unoptimized_naive(generator, seed, cap):
    db = GENERATORS[generator](seed)
    model = CostModel.for_database(db, db.alphabet, cap)
    domain = tuple(db.alphabet.strings(cap))
    for name, query in _queries(db.alphabet):
        plan = build_query_plan(query.formula, query.head, model)
        assert plan.fallback_reason is None, (
            f"{generator}/{name}: expected an executable plan"
        )
        got = execute_plan(plan, db, db.alphabet, cap, domain=domain)
        assert got == _oracle(query, db, cap), (
            f"{generator}/{name}: plan route diverged (seed={seed})"
        )


@settings(max_examples=8, deadline=None)
@pytest.mark.parametrize(
    "generator", sorted(GENERATORS), ids=sorted(GENERATORS)
)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_optimized_algebra_matches_unoptimized_naive(generator, seed):
    from repro.errors import EvaluationError

    cap = 2
    db = GENERATORS[generator](seed)
    session = QueryEngine()
    for name, query in _queries(db.alphabet):
        try:
            expression, _ = session.optimized_translation(query)
        except EvaluationError:
            continue  # head ≠ free variables: not algebra-translatable
        got = evaluate_expression(expression, db, cap, session=session)
        assert got == _oracle(query, db, cap), (
            f"{generator}/{name}: optimized algebra diverged (seed={seed})"
        )


@pytest.mark.parametrize("workers", (1, 2, 4))
@pytest.mark.parametrize(
    "generator", sorted(GENERATORS), ids=sorted(GENERATORS)
)
def test_engines_match_oracle_across_worker_counts(generator, workers):
    """The plan-consuming engines agree with the oracle at every
    worker count; ``min_parallel_items=1`` forces real pool dispatch."""
    db = GENERATORS[generator](seed=42)
    cap = 2
    parallel = ParallelEngine(workers=workers, shards=3, min_parallel_items=1)
    for name, query in QUERIES:
        expected = sorted(_oracle(query, db, cap))
        for engine in ("naive", "planner", "auto", parallel):
            got = sorted(
                _SESSION.evaluate(
                    query, db, length=cap, engine=engine, workers=workers
                )
            )
            assert got == expected, (
                f"{generator}/{name}: engine={engine} "
                f"workers={workers} diverged"
            )


def test_rejected_shapes_still_match_oracle():
    """Naive-fallback plans (with a rejection reason) keep the naive
    and parallel engines exact; only the planner refuses."""
    from repro.errors import EvaluationError

    from repro.observability import Tracer

    db = GENERATORS["example"](seed=7)
    cap = 2
    query = Query(("x",), Not(exists("y", rel("R1", "x", "y"))), AB)
    expected = sorted(_oracle(query, db, cap))
    session = QueryEngine(tracer=Tracer())
    assert sorted(session.evaluate(query, db, length=cap)) == expected
    with pytest.raises(EvaluationError):
        session.evaluate(query, db, length=cap, engine="planner")
    assert session.stats.rejects.get("unsupported-literal", 0) >= 1
    # The rejection is observable three ways: the stats counter above,
    # a plan.reject.<reason> tracer counter, and a span attribute on
    # the normalize.plan span.
    assert session.tracer.counters.get("plan.reject.unsupported-literal", 0) >= 1
    normalize_spans = [
        record
        for record in session.tracer.records()
        if record.name == "normalize.plan"
    ]
    assert any(
        dict(record.attributes).get("fallback") == "unsupported-literal"
        for record in normalize_spans
    )
