"""Unit tests for the calculus normalization passes."""

from repro.core.alphabet import AB
from repro.core.database import Database
from repro.core import shorthands as sh
from repro.core.syntax import (
    And,
    Not,
    exists,
    f_or,
    free_variables,
    lift,
    rel,
)
from repro.ir import CostModel, build_query_plan, simplify, split_disjuncts
from repro.ir.normalize import MAX_BRANCHES, hoist_prefix
from repro.ir.plan import (
    REASON_BRANCH_LIMIT,
    REASON_UNBOUND_NEGATION,
    REASON_UNSUPPORTED_LITERAL,
    ConjunctivePlan,
    NaivePlan,
    UnionPlan,
)


def db() -> Database:
    return Database(
        AB,
        {
            "R1": [("a", "b"), ("ab", "ab"), ("b", "b")],
            "R2": [("ab",), ("b",), ("ba",)],
        },
    )


def model(cap: int = 3) -> CostModel:
    return CostModel.for_database(db(), AB, cap)


class TestSimplify:
    def test_double_negation_eliminated(self):
        formula = Not(Not(rel("R2", "x")))
        assert simplify(formula) == rel("R2", "x")

    def test_nested_double_negations(self):
        formula = Not(Not(Not(Not(rel("R2", "x")))))
        assert simplify(formula) == rel("R2", "x")

    def test_vacuous_exists_dropped(self):
        formula = exists("y", rel("R2", "x"))
        assert simplify(formula) == rel("R2", "x")

    def test_binding_exists_kept(self):
        formula = exists("y", rel("R1", "x", "y"))
        assert simplify(formula) == formula

    def test_atoms_unchanged(self):
        atom = rel("R1", "x", "y")
        assert simplify(atom) is atom


class TestSplit:
    def test_disjunction_encoding_recovered(self):
        formula = f_or(rel("R2", "x"), rel("R1", "x", "x"))
        assert split_disjuncts(formula) == [
            rel("R2", "x"),
            rel("R1", "x", "x"),
        ]

    def test_conjunction_distributes(self):
        formula = And(
            f_or(rel("R2", "x"), rel("R2", "y")), rel("R1", "x", "y")
        )
        parts = split_disjuncts(formula)
        assert parts is not None and len(parts) == 2
        assert all(isinstance(part, And) for part in parts)

    def test_exists_distributes(self):
        formula = exists(
            "y", f_or(rel("R1", "x", "y"), rel("R1", "y", "x"))
        )
        parts = split_disjuncts(formula)
        assert parts is not None and len(parts) == 2
        assert {str(p) for p in parts} == {
            "∃y.R1(x,y)",
            "∃y.R1(y,x)",
        }

    def test_conjunctive_formula_is_one_branch(self):
        formula = And(rel("R1", "x", "y"), rel("R2", "y"))
        assert split_disjuncts(formula) == [formula]

    def test_branch_blowup_returns_none(self):
        # Each conjunct is a 2-way disjunction: 2^7 = 128 > MAX_BRANCHES.
        formula = f_or(rel("R2", "x"), rel("R1", "x", "x"))
        for _ in range(6):
            formula = And(
                formula, f_or(rel("R2", "x"), rel("R1", "x", "x"))
            )
        assert 2**7 > MAX_BRANCHES
        assert split_disjuncts(formula) is None


class TestHoist:
    def test_nested_blocks_flatten(self):
        branch = And(
            exists("y", rel("R1", "x", "y")),
            exists("z", rel("R1", "x", "z")),
        )
        prefix, matrix = hoist_prefix(branch, ("x",))
        assert set(prefix) == {"y", "z"}
        assert free_variables(matrix) == {"x", "y", "z"}

    def test_colliding_binder_renamed(self):
        # Both conjuncts bind y: the second must be renamed apart.
        branch = And(
            exists("y", rel("R1", "x", "y")),
            exists("y", rel("R2", "y")),
        )
        prefix, matrix = hoist_prefix(branch, ("x",))
        assert len(prefix) == 2
        assert len(set(prefix)) == 2
        assert "x" not in prefix

    def test_binder_shadowing_head_renamed(self):
        branch = exists("x", rel("R2", "x"))
        prefix, _ = hoist_prefix(branch, ("x",))
        assert prefix and prefix[0] != "x"


class TestBuildQueryPlan:
    def test_conjunctive_single_branch(self):
        formula = And(rel("R1", "x", "y"), rel("R2", "y"))
        plan = build_query_plan(formula, ("x", "y"), model())
        assert isinstance(plan.root, ConjunctivePlan)
        assert plan.fallback_reason is None
        # R1 binds both variables, so R2(y) degrades to a filter.
        assert [step.action for step in plan.root.steps] == ["join", "filter"]

    def test_disjunction_becomes_union(self):
        formula = f_or(rel("R2", "x"), rel("R1", "x", "x"))
        plan = build_query_plan(formula, ("x",), model())
        assert isinstance(plan.root, UnionPlan)
        assert len(plan.branches()) == 2
        fired = dict(plan.rules)
        assert fired["split.de-morgan"] == 1

    def test_relational_joins_ordered_before_string_filters(self):
        formula = And(
            lift(sh.equals("x", "y")),
            And(rel("R1", "x", "y"), rel("R2", "y")),
        )
        plan = build_query_plan(formula, ("x", "y"), model())
        actions = [step.action for step in plan.root.steps]
        assert actions == ["join", "filter", "filter"]
        assert dict(plan.rules).get("order.conjuncts") == 1

    def test_generation_priced_by_cap(self):
        formula = exists(
            "y", And(rel("R2", "y"), lift(sh.concatenation("x", "y", "y")))
        )
        cheap = build_query_plan(formula, ("x",), model(cap=2))
        costly = build_query_plan(formula, ("x",), model(cap=6))
        assert cheap.root.steps[-1].action == "generate"
        assert costly.root.est_cost > cheap.root.est_cost

    def test_unsupported_literal_reason(self):
        plan = build_query_plan(
            Not(exists("y", rel("R1", "x", "y"))), ("x",), model()
        )
        assert isinstance(plan.root, NaivePlan)
        assert plan.fallback_reason == REASON_UNSUPPORTED_LITERAL

    def test_unbound_negation_reason(self):
        plan = build_query_plan(
            exists("y", Not(rel("R1", "x", "y"))), ("x",), model()
        )
        assert plan.fallback_reason == REASON_UNBOUND_NEGATION

    def test_branch_limit_reason(self):
        formula = f_or(rel("R2", "x"), rel("R1", "x", "x"))
        for _ in range(6):
            formula = And(
                formula, f_or(rel("R2", "x"), rel("R1", "x", "x"))
            )
        plan = build_query_plan(formula, ("x",), model())
        assert plan.fallback_reason == REASON_BRANCH_LIMIT

    def test_simplified_form_always_available(self):
        formula = Not(Not(exists("z", rel("R2", "x"))))
        plan = build_query_plan(formula, ("x",), model())
        assert str(plan.simplified) == "R2(x)"

    def test_plan_is_deterministic(self):
        formula = f_or(rel("R2", "x"), rel("R1", "x", "x"))
        first = build_query_plan(formula, ("x",), model())
        second = build_query_plan(formula, ("x",), model())
        assert first == second
