"""Unit tests for the algebra rewriter and the sequencing product."""

from hypothesis import given, settings, strategies as st

from repro.algebra.evaluate import evaluate_expression
from repro.algebra.expressions import (
    Product,
    Project,
    Rel,
    Select,
    SigmaStar,
    Union,
)
from repro.core import shorthands as sh
from repro.core.alphabet import AB
from repro.core.database import Database
from repro.core.syntax import (
    SStar,
    atom,
    concat,
    f_or,
    left,
    not_empty,
    rel,
    union,
)
from repro.core.syntax import IsChar, IsEmpty, SameChar, WTrue
from repro.engine import QueryEngine
from repro.fsa.compile import compile_string_formula
from repro.fsa.product import fusion_supported, sequence_machines
from repro.fsa.simulate import language
from repro.ir import optimize_expression, translate_branches


def db() -> Database:
    return Database(
        AB,
        {
            "R1": [("a", "b"), ("ab", "ab"), ("b", "b")],
            "R2": [("ab",), ("b",), ("ba",)],
        },
    )


def machine(formula, variables=("x", "y")):
    return compile_string_formula(formula, AB, variables=variables).fsa


def answers(expression, length=3):
    return evaluate_expression(expression, db(), length)


class TestSequencingProduct:
    """seq(A, B) accepts exactly L(A) ∩ L(B) — the fusion soundness."""

    def test_language_is_intersection(self):
        first = machine(sh.equals("x", "y"))
        second = machine(sh.prefix_of("x", "y"))
        assert fusion_supported(first, second)
        fused = sequence_machines(first, second)
        assert language(fused, 2) == language(first, 2) & language(
            second, 2
        )

    def test_order_does_not_change_the_language(self):
        first = machine(sh.equals("x", "y"))
        second = machine(sh.constant("x", "ab"), ("x", "y"))
        assert language(sequence_machines(first, second), 3) == language(
            sequence_machines(second, first), 3
        )

    def test_mismatched_arity_not_supported(self):
        unary = machine(sh.constant("x", "a"), ("x",))
        binary = machine(sh.equals("x", "y"))
        assert not fusion_supported(unary, binary)


# Random string formulae for the property-based fusion check, mirroring
# tests/property/test_engine_equivalence.py.
_window_tests = st.sampled_from(
    [
        WTrue(),
        IsChar("x", "a"),
        IsChar("y", "b"),
        IsEmpty("x"),
        SameChar("x", "y"),
        not_empty("x"),
    ]
)
_transposes = st.sampled_from(
    [left("x"), left("y"), left("x", "y"), left()]
)
_atoms = st.builds(atom, _transposes, _window_tests)
_formulas = st.recursive(
    _atoms,
    lambda children: st.one_of(
        st.builds(lambda a, b: concat(a, b), children, children),
        st.builds(lambda a, b: union(a, b), children, children),
        st.builds(SStar, children),
    ),
    max_leaves=3,
)


@settings(max_examples=40, deadline=None)
@given(first=_formulas, second=_formulas)
def test_sequencing_product_matches_intersection_oracle(first, second):
    a = machine(first)
    b = machine(second)
    if not fusion_supported(a, b):
        return
    assert language(sequence_machines(a, b), 2) == language(
        a, 2
    ) & language(b, 2)


class TestRewritePasses:
    def test_select_pushes_through_union(self):
        fsa = machine(sh.equals("x", "y"))
        expr = Select(Union(Rel("R1", 2), Rel("R1", 2)), fsa)
        optimized, rules = optimize_expression(expr)
        assert isinstance(optimized, Union)
        assert dict(rules)["select-pushdown-union"] == 1
        assert answers(optimized) == answers(expr)

    def test_stacked_selects_fuse(self):
        first = machine(sh.equals("x", "y"))
        second = machine(sh.constant("x", "ab"), ("x", "y"))
        expr = Select(Select(Rel("R1", 2), first), second)
        optimized, rules = optimize_expression(expr)
        assert isinstance(optimized, Select)
        assert isinstance(optimized.inner, Rel)
        assert dict(rules)["select-fuse"] == 1
        assert answers(optimized) == answers(expr)

    def test_identity_projection_vanishes(self):
        expr = Project(Rel("R1", 2), (0, 1))
        optimized, rules = optimize_expression(expr)
        assert optimized == Rel("R1", 2)
        assert dict(rules)["project-identity"] == 1

    def test_stacked_projections_fuse(self):
        expr = Project(Project(Rel("R1", 2), (1, 0)), (1,))
        optimized, rules = optimize_expression(expr)
        assert optimized == Project(Rel("R1", 2), (0,))
        assert dict(rules)["project-fuse"] == 1
        assert answers(optimized) == answers(expr)

    def test_projection_pushes_into_sigma_product(self):
        # π over a never-empty Σ* padding factor drops the factor.
        expr = Project(Product(Rel("R2", 1), SigmaStar()), (0,))
        optimized, rules = optimize_expression(expr)
        assert optimized == Rel("R2", 1)
        assert dict(rules)["project-pushdown-product"] == 1
        assert answers(optimized) == answers(expr)

    def test_minimization_shrinks_machines(self):
        fsa = machine(union(sh.equals("x", "y"), sh.equals("x", "y")))
        expr = Select(Rel("R1", 2), fsa)
        optimized, rules = optimize_expression(expr)
        assert len(optimized.machine.states) < len(fsa.states)
        assert dict(rules)["select-minimize"] == 1
        assert answers(optimized) == answers(expr)

    def test_generative_factor_lifts_into_selection(self):
        # σ_concat over R2 × σ_pattern(Σ*): the Σ* factor's constraint
        # fuses into the outer generator instead of cross-producting.
        pattern = machine(sh.constant("x", "ab"), ("x",))
        generator = machine(
            sh.concatenation("x", "y", "y"), ("y", "x")
        )
        expr = Select(
            Product(Rel("R2", 1), Select(SigmaStar(), pattern)), generator
        )
        optimized, rules = optimize_expression(expr)
        assert dict(rules)["generative-fuse"] == 1
        assert answers(optimized, length=4) == answers(expr, length=4)

    def test_session_caches_fused_and_minimized_machines(self):
        session = QueryEngine()
        first = machine(sh.equals("x", "y"))
        second = machine(sh.constant("x", "ab"), ("x", "y"))
        expr = Select(Select(Rel("R1", 2), first), second)
        optimize_expression(expr, session=session)
        optimize_expression(expr, session=session)
        assert session.stats.caches["optimize"].hits >= 1
        assert session.stats.caches["minimize"].hits >= 1

    def test_noop_expression_reports_no_rules(self):
        expr = Rel("R2", 1)
        optimized, rules = optimize_expression(expr)
        assert optimized == expr and rules == ()


class TestTranslateBranches:
    def test_single_branch_returns_none(self):
        formula = rel("R2", "x")
        assert translate_branches(formula, ("x",), AB) is None

    def test_union_translation_matches_direct(self):
        from repro.algebra.translate import calculus_to_algebra

        formula = f_or(rel("R2", "x"), rel("R1", "x", "x"))
        direct = calculus_to_algebra(formula, ("x",), AB)
        branched = translate_branches(formula, ("x",), AB)
        assert isinstance(branched, Union)
        assert answers(branched) == answers(direct)

    def test_partial_branches_pad_missing_head_variables(self):
        # The second branch never mentions y: it must be padded to the
        # full head with a Σ* column, in head order.
        formula = f_or(rel("R1", "x", "y"), rel("R2", "x"))
        branched = translate_branches(formula, ("x", "y"), AB)
        assert branched is not None
        expected = {("a", "b"), ("ab", "ab"), ("b", "b")} | {
            (s,) + (pad,)
            for (s,) in db().relation("R2")
            for pad in AB.strings(2)
        }
        assert (
            evaluate_expression(branched, db(), 2)
            == frozenset(expected)
        )
