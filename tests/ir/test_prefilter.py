"""Mandatory-factor derivation and the index-prefilter pushdown pass."""

from repro.core import shorthands as sh
from repro.core.alphabet import Alphabet
from repro.core.syntax import (
    And,
    IsChar,
    Not,
    SStar,
    WTrue,
    atom,
    concat,
    left,
    lift,
    rel,
    union,
)
from repro.fsa.compile import compile_string_formula
from repro.ir import (
    CostModel,
    attach_index_prefilters,
    build_query_plan,
    render_plan,
    required_factors,
)

DNA = Alphabet("acgt")


def _contains(var, motif):
    """``motif`` occurs somewhere in ``var`` (prefix-skip then match)."""
    return concat(
        SStar(atom(left(var), WTrue())),
        *[atom(left(var), IsChar(var, char)) for char in motif],
    )


def _machine(formula):
    compiled = compile_string_formula(formula, DNA)
    return compiled.fsa, compiled.tape_of(compiled.variables[0])


def test_required_factors_finds_the_motif_chain():
    fsa, tape = _machine(_contains("y", "gcgcgc"))
    assert required_factors(fsa, tape) == ("gcgcgc",)


def test_required_factors_drops_substrings_of_longer_factors():
    fsa, tape = _machine(
        concat(_contains("y", "gcg"), _contains("y", "acgt"))
    )
    factors = required_factors(fsa, tape)
    assert "acgt" in factors
    # No factor is a substring of another (it would prune nothing more).
    for one in factors:
        assert not any(
            one != other and one in other for other in factors
        )


def test_required_factors_empty_for_alternative_paths():
    # Either motif path accepts, so no edge is mandatory.
    fsa, tape = _machine(
        union(_contains("y", "gcgc"), _contains("y", "acac"))
    )
    assert required_factors(fsa, tape) == ()


def test_required_factors_empty_when_empty_string_accepted():
    # equals has a trivial accepting path for (ε, ε): nothing mandatory.
    compiled = compile_string_formula(sh.equals("x", "y"), DNA)
    for variable in compiled.variables:
        assert required_factors(compiled.fsa, compiled.tape_of(variable)) == ()


def _plan(formula, head=("y",)):
    model = CostModel.for_database(_db(), DNA, 4)
    return build_query_plan(formula, head, model), model


def _db():
    from repro.core.database import Database

    return Database(
        DNA, {"R2": [("gcgcgc",), ("acgtac",), ("aaaa",)]}
    )


def test_attach_index_prefilters_marks_join_steps():
    plan, model = _plan(
        And(rel("R2", "y"), lift(_contains("y", "gcgcgc")))
    )
    attached = attach_index_prefilters(plan, DNA, model=model)
    (branch,) = attached.branches()
    joins = [step for step in branch.steps if step.action == "join"]
    assert joins[0].prefilter == ((0, ("gcgcgc",)),)
    assert ("pushdown.index-prefilter", 1) in attached.rules
    # The prefilter discounts the join estimate.
    (old_branch,) = plan.branches()
    old_join = [s for s in old_branch.steps if s.action == "join"][0]
    assert joins[0].est_cost < old_join.est_cost
    assert joins[0].est_rows < old_join.est_rows
    assert "prefilter[col0∋'gcgcgc']" in render_plan(attached)


def test_attach_index_prefilters_skips_negated_atoms():
    plan, model = _plan(
        And(rel("R2", "y"), Not(lift(_contains("y", "gcgcgc"))))
    )
    attached = attach_index_prefilters(plan, DNA, model=model)
    for branch in attached.branches():
        for step in branch.steps:
            assert step.prefilter == ()
    assert all(rule != "pushdown.index-prefilter" for rule, _ in attached.rules)


def test_attach_index_prefilters_is_identity_without_factors():
    plan, model = _plan(
        And(rel("R2", "y"), lift(sh.gc_plus_a_star("y")))
    )
    assert attach_index_prefilters(plan, DNA, model=model) is plan


def test_prefiltered_plans_execute_identically():
    from repro.core.query import Query
    from repro.engine import QueryEngine
    from repro.observability import Tracer

    db = _db().with_storage("ngram")
    query = Query(
        ("y",), And(rel("R2", "y"), lift(_contains("y", "gcgcgc"))), DNA
    )
    tracer = Tracer()
    session = QueryEngine(tracer=tracer)
    got = session.evaluate(query, db, length=6, engine="planner")
    assert got == frozenset({("gcgcgc",)})
    assert tracer.counters.get("index.probe", 0) >= 1
    assert tracer.counters.get("index.pruned", 0) >= 2
