"""Protocol, prefilter and delta tests for the SLP storage backend."""

import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.alphabet import DNA, Alphabet
from repro.core.database import Database
from repro.errors import ArityError, StorageError
from repro.observability import Tracer, activate
from repro.slp import compress, literal, repeat
from repro.storage import (
    STORAGE_KINDS,
    InMemoryStorage,
    SLPStorage,
    probe_candidates,
    storage_factory,
)

ROWS = [("gcgcgcgc", "acgt"), ("aaaaaaaa", "tttt"), ("gattacca", "acgt")]


def test_slp_is_a_registered_storage_kind():
    assert "slp" in STORAGE_KINDS
    factory = storage_factory("slp")
    store = factory("R", ROWS, DNA)
    assert isinstance(store, SLPStorage)


class TestProtocol:
    def test_matches_in_memory_observations(self):
        reference = InMemoryStorage(ROWS)
        store = SLPStorage.build(ROWS)
        assert store.arity == reference.arity
        assert store.size() == reference.size()
        assert store.tuples == reference.tuples
        assert set(store.scan()) == set(reference.scan())
        for column in range(store.arity):
            assert store.column(column) == reference.column(column)
        for row in ROWS:
            assert store.contains(tuple(row))
        assert not store.contains(("gcgcgcgc", "zzzz"))

    def test_stats_match_uncompressed_stats_plus_stored_chars(self):
        reference = InMemoryStorage(ROWS).stats()
        stats = SLPStorage.build(ROWS).stats()
        assert stats.rows == reference.rows
        assert stats.arity == reference.arity
        for mine, theirs in zip(stats.columns, reference.columns):
            assert mine.distinct == theirs.distinct
            assert mine.total_chars == theirs.total_chars
            assert mine.min_length == theirs.min_length
            assert mine.max_length == theirs.max_length
            assert mine.length_histogram == theirs.length_histogram
            # The one intentional difference: a real stored size.
            assert mine.stored_chars >= 0
            assert mine.effective_stored_chars == mine.stored_chars
            assert theirs.stored_chars == -1
            assert theirs.effective_stored_chars == theirs.total_chars

    def test_mixed_arity_rejected(self):
        with pytest.raises(ArityError):
            SLPStorage.build([("a",), ("a", "b")])

    def test_pickle_round_trip(self):
        store = SLPStorage.build(ROWS)
        clone = pickle.loads(pickle.dumps(store))
        assert clone.tuples == store.tuples
        assert clone.stats() == store.stats()

    def test_build_counter(self):
        tracer = Tracer()
        with activate(tracer):
            SLPStorage.build(ROWS)
        # 5 distinct strings across both columns, compressed once each.
        assert tracer.counters["slp.build"] == 5


class TestPrefilter:
    def test_candidates_are_supersets_of_matches(self):
        store = SLPStorage.build(ROWS)
        found = store.candidates(0, "gcg")
        matching = {
            row_id
            for row_id, row in enumerate(sorted(set(ROWS)))
            if "gcg" in row[0]
        }
        assert found is not None and matching <= found

    def test_short_factors_decline(self):
        store = SLPStorage.build(ROWS)
        assert store.candidates(0, "gc") is None

    def test_absent_factor_prunes_everything(self):
        store = SLPStorage.build(ROWS)
        assert store.candidates(1, "ggg") == frozenset()

    def test_rows_for_expands_only_requested_rows(self):
        store = SLPStorage.build(ROWS)
        store._decoded = [None] * store.size()  # drop the build-time seed
        found = store.candidates(0, "gatt")
        rows = list(store.rows_for(found))
        assert rows == [("gattacca", "acgt")]
        decoded = sum(1 for cell in store._decoded if cell is not None)
        assert decoded == len(found)

    def test_probe_candidates_integration(self):
        store = SLPStorage.build(ROWS)
        found = probe_candidates(store, 0, ("gcgc", "cgcg"))
        assert found is not None and len(found) == 1

    def test_probe_counters(self):
        store = SLPStorage.build(ROWS)
        tracer = Tracer()
        with activate(tracer):
            store.candidates(0, "gcgc")
            store.candidates(0, "acgt")
        assert tracer.counters["slp.probe"] == 2
        assert tracer.counters["slp.index.build"] == 1

    def test_grams_probe_never_expands_scale_cells(self):
        # A 2-billion-character cell: candidates answer from grammars.
        cell = repeat(compress("gatc"), 500_000_000)
        store = SLPStorage.from_cells([(cell,), (compress("aaaa"),)])
        found = store.candidates(0, "tcga")
        assert found is not None and len(found) == 1
        assert store.stats().columns[0].total_chars == 2_000_000_004
        assert store.stats().columns[0].stored_chars < 200


class TestDelta:
    def test_apply_delta_matches_reference(self):
        store = SLPStorage.build(ROWS)
        inserts = frozenset({("tttttttt", "gg")})
        deletes = frozenset({("aaaaaaaa", "tttt")})
        derived = store.apply_delta(inserts, deletes)
        reference = InMemoryStorage(ROWS).apply_delta(inserts, deletes)
        assert derived.tuples == reference.tuples
        assert store.tuples == frozenset(ROWS)  # receiver untouched

    def test_noop_delta_returns_self(self):
        store = SLPStorage.build(ROWS)
        assert store.apply_delta(frozenset(), frozenset()) is store
        miss = frozenset({("zzzzzzzz", "zz")})
        assert store.apply_delta(frozenset(), miss) is store

    def test_delta_arity_mismatch_rejected(self):
        store = SLPStorage.build(ROWS)
        with pytest.raises(ArityError):
            store.apply_delta(frozenset({("only-one",)}), frozenset())

    def test_delta_never_expands_stored_cells(self):
        cell = repeat(compress("ga"), 10**9)
        store = SLPStorage.from_cells([(cell,)])
        derived = store.apply_delta(
            frozenset({("acgt",)}), frozenset({("tttt",)})
        )
        assert derived.size() == 2
        assert derived.stats().columns[0].total_chars == 2 * 10**9 + 4


class TestDatabaseIntegration:
    def test_with_storage_slp(self):
        db = Database(DNA, {"R": ROWS})
        compressed = db.with_storage("slp")
        assert compressed.relation("R").tuples == db.relation("R").tuples
        assert isinstance(compressed.relation("R").storage, SLPStorage)

    def test_apply_preserves_the_backend(self):
        from repro.delta import Delta

        db = Database(DNA, {"R": ROWS}, storage="slp")
        updated = db.apply(Delta(inserts=(("R", ("gggg", "cc")),)))
        assert isinstance(updated.relation("R").storage, SLPStorage)
        assert ("gggg", "cc") in updated.relation("R")

    def test_unknown_kind_still_rejected(self):
        with pytest.raises(StorageError):
            storage_factory("zip")


@settings(max_examples=25, deadline=None)
@given(
    rows=st.lists(
        st.tuples(
            st.text(alphabet="acgt", max_size=12),
            st.text(alphabet="acgt", max_size=12),
        ),
        max_size=8,
    ),
    factor=st.text(alphabet="acgt", min_size=3, max_size=6),
)
def test_candidates_superset_sound_on_random_relations(rows, factor):
    store = SLPStorage.build(rows)
    found = store.candidates(0, factor)
    assert found is not None
    ordered = sorted(set(tuple(row) for row in rows))
    matching = {
        row_id for row_id, row in enumerate(ordered) if factor in row[0]
    }
    assert matching <= found


@settings(max_examples=25, deadline=None)
@given(
    rows=st.lists(
        st.tuples(st.text(alphabet="ab", max_size=10)), max_size=8
    ),
    inserts=st.lists(
        st.tuples(st.text(alphabet="ab", max_size=10)), max_size=4
    ),
    deletes=st.lists(
        st.tuples(st.text(alphabet="ab", max_size=10)), max_size=4
    ),
)
def test_delta_differential_against_in_memory(rows, inserts, deletes):
    if not rows and not inserts:
        return
    store = SLPStorage.build(rows, arity=1)
    reference = InMemoryStorage(rows, arity=1)
    derived = store.apply_delta(frozenset(inserts), frozenset(deletes))
    expected = reference.apply_delta(frozenset(inserts), frozenset(deletes))
    assert derived.tuples == expected.tuples
