"""Property tests for the SLP grammar layer (ISSUE satellite).

The core contract — ``expand(compress(s)) == s`` and
``expanded_length`` agreement — is checked over every workload
generator's alphabet, plus the two adversarial regimes: highly
repetitive strings (where RePair shines and overlap handling of
squares like ``"aaaa"`` is easy to get wrong) and incompressible
random strings (where compress must degrade to a balanced fold without
corrupting anything).
"""

import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.alphabet import AB, BINARY, DNA, Alphabet
from repro.errors import SLPError
from repro.slp import (
    DEFAULT_EXPAND_LIMIT,
    SLP,
    compress,
    concat,
    literal,
    repeat,
)
from repro.workloads.generators import (
    copy_language_strings,
    manifold_strings,
    near_duplicates,
    uniform_strings,
    with_planted_motif,
)

#: Every alphabet the workload generators draw from.
ALPHABETS = {"ab": AB, "dna": DNA, "binary": BINARY}

ALPHABET_PARAMS = [
    pytest.param(alphabet, id=name) for name, alphabet in ALPHABETS.items()
]


def _symbol_text(alphabet):
    return st.text(alphabet=st.sampled_from(alphabet.symbols), max_size=64)


@pytest.mark.parametrize("alphabet", ALPHABET_PARAMS)
@settings(max_examples=50, deadline=None)
@given(data=st.data())
def test_compress_round_trips_on_generator_alphabets(alphabet, data):
    text = data.draw(_symbol_text(alphabet))
    slp = compress(text)
    assert slp.expand() == text
    assert slp.expanded_length() == len(text)
    assert len(slp) == len(text)
    slp.validate()  # raises on any structural defect


@settings(max_examples=40, deadline=None)
@given(
    base=st.text(alphabet="ab", min_size=1, max_size=4),
    reps=st.integers(min_value=1, max_value=200),
)
def test_compress_round_trips_on_highly_repetitive_strings(base, reps):
    text = base * reps
    slp = compress(text)
    assert slp.expand() == text
    assert slp.expanded_length() == len(text)
    # Long repetitions must actually compress: sublinear rule count.
    if reps >= 64:
        assert slp.stored_size() < len(text) // 2


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31))
def test_compress_round_trips_on_incompressible_strings(seed):
    import random

    rng = random.Random(seed)
    text = "".join(
        rng.choice("abcdefghijklmnopqrstuvwxyz0123456789") for _ in range(128)
    )
    slp = compress(text)
    assert slp.expand() == text
    assert slp.expanded_length() == len(text)


@pytest.mark.parametrize(
    "strings",
    [
        pytest.param(uniform_strings(AB, 8, 12, seed=5), id="uniform"),
        pytest.param(
            with_planted_motif(DNA, "gattaca", count=8, max_length=12, seed=5),
            id="motif",
        ),
        pytest.param(
            near_duplicates(DNA, "acgtacgt", count=8, max_edits=3, seed=5),
            id="near-dup",
        ),
        pytest.param(
            copy_language_strings(count=8, max_half_length=6, seed=5),
            id="copy-lang",
        ),
        pytest.param(
            [
                repeated
                for repeated, _base in manifold_strings(
                    BINARY, count=8, max_base_length=3, max_repeats=5, seed=5
                )
            ],
            id="manifold",
        ),
    ],
)
def test_compress_round_trips_on_workload_generator_output(strings):
    for text in strings:
        assert compress(text).expand() == text


@settings(max_examples=40, deadline=None)
@given(
    left=st.text(alphabet="acgt", max_size=32),
    right=st.text(alphabet="acgt", max_size=32),
)
def test_concat_matches_string_concatenation(left, right):
    slp = concat(compress(left), compress(right))
    assert slp.expand() == left + right
    assert slp.expanded_length() == len(left) + len(right)


@settings(max_examples=40, deadline=None)
@given(
    base=st.text(alphabet="ab", max_size=6),
    count=st.integers(min_value=0, max_value=50),
)
def test_repeat_matches_string_multiplication(base, count):
    slp = repeat(compress(base), count)
    assert slp.expand() == base * count
    assert slp.expanded_length() == len(base) * count


def test_repeat_scales_logarithmically():
    huge = repeat(literal("ab"), 10**15)
    assert huge.expanded_length() == 2 * 10**15
    assert huge.stored_size() < 120  # O(log n) rules, never expanded


def test_expand_respects_the_decompression_cap():
    huge = repeat(literal("a"), DEFAULT_EXPAND_LIMIT + 1)
    with pytest.raises(SLPError):
        huge.expand()
    assert huge.expand(max_chars=huge.expanded_length())  # explicit cap


@settings(max_examples=40, deadline=None)
@given(
    text=st.text(alphabet="acgt", max_size=40),
    n=st.integers(min_value=1, max_value=5),
)
def test_grams_match_brute_force(text, n):
    expected = frozenset(
        text[i : i + n] for i in range(len(text) - n + 1)
    )
    assert compress(text).grams(n) == expected


@settings(max_examples=30, deadline=None)
@given(text=st.text(alphabet="ab", max_size=48))
def test_structural_identity_is_string_equality(text):
    first = compress(text)
    second = compress(str(text))  # force a distinct str object
    assert first == second
    assert hash(first) == hash(second)
    assert first._root is second._root or text == ""


@settings(max_examples=25, deadline=None)
@given(text=st.text(alphabet="acgt", max_size=48))
def test_pickle_round_trip_re_interns(text):
    slp = compress(text)
    clone = pickle.loads(pickle.dumps(slp))
    assert clone == slp
    assert clone.expand() == text


def test_rules_round_trip():
    slp = compress("abracadabra" * 8)
    assert SLP.from_rules(slp.rules()) == slp


def test_from_rules_rejects_dangling_references():
    with pytest.raises(SLPError):
        SLP.from_rules(((0, 1),))


def test_non_latin_alphabets_round_trip():
    # The grammar is symbol-agnostic: any Alphabet's symbols work.
    alphabet = Alphabet("αβ")
    text = "αββα" * 16
    slp = compress(text)
    assert slp.expand() == text
    alphabet.validate_string(slp.expand())
