"""The compressed ≡ decompressed differential gate (ISSUE tentpole).

Byte-identical answer sets whether relations live in plain frozensets
or as SLP-compressed cells — across every engine × every kernel mode
on hypothesis-driven databases from all workload generators, and
across worker counts {1, 2, 4} on a fixed database (worker processes
re-intern grammars from pickles, so cross-process structural identity
is part of the contract).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import shorthands as sh
from repro.core.alphabet import AB, Alphabet
from repro.core.database import Database
from repro.core.query import Query
from repro.core.syntax import And, Not, exists, f_or, lift, rel
from repro.engine import ParallelEngine, QueryEngine
from repro.fsa.kernel import KERNEL_MODES
from repro.workloads.generators import (
    copy_language_strings,
    example_database,
    manifold_strings,
    near_duplicates,
    uniform_strings,
    with_planted_motif,
)

DNA = Alphabet("acgt")
ENGINES = ("naive", "planner", "algebra", "auto")
WORKER_COUNTS = (1, 2, 4)

#: Every generator in workloads/generators.py, as a seeded factory —
#: string lengths stay ≤ 2 so the cap-2 truncation domain covers the
#: databases and all engines share one exact semantics.
GENERATORS = {
    "uniform": lambda seed: example_database(
        AB,
        singles=uniform_strings(AB, 4, 2, seed=seed),
        seed=seed,
        size=3,
        max_length=2,
    ),
    "motif": lambda seed: example_database(
        AB,
        singles=with_planted_motif(AB, "b", count=4, max_length=1, seed=seed),
        seed=seed,
        size=3,
        max_length=2,
    ),
    "near-dup": lambda seed: example_database(
        AB,
        singles=near_duplicates(AB, "a", count=4, max_edits=1, seed=seed),
        seed=seed,
        size=3,
        max_length=2,
    ),
    "copy-lang": lambda seed: example_database(
        AB,
        singles=copy_language_strings(count=4, max_half_length=1, seed=seed),
        seed=seed,
        size=3,
        max_length=2,
    ),
    "manifold": lambda seed: example_database(
        AB,
        pairs=manifold_strings(
            AB, count=3, max_base_length=1, max_repeats=2, seed=seed
        ),
        seed=seed,
        size=3,
        max_length=2,
    ),
    "example": lambda seed: example_database(
        AB, seed=seed, size=3, max_length=2
    ),
}


def _queries(alphabet):
    """Query shapes covering joins, string filters and disjunctions."""
    yield "join-filter", Query(
        ("x", "y"),
        And(
            lift(sh.prefix_of("x", "y")),
            And(rel("R1", "x", "y"), Not(rel("R2", "y"))),
        ),
        alphabet,
    )
    yield "disjunction", Query(
        ("x",), f_or(rel("R2", "x"), rel("R1", "x", "x")), alphabet
    )
    yield "nested-exists", Query(
        ("x",),
        exists("y", And(rel("R1", "x", "y"), rel("R2", "y"))),
        alphabet,
    )
    yield "substring", Query(
        ("x",),
        exists("y", And(rel("R1", "x", "y"), lift(sh.occurs_in("x", "y")))),
        alphabet,
    )


def _assert_compression_invisible(plain, cap):
    compressed = plain.with_storage("slp")
    for name, query in _queries(plain.alphabet):
        for kernel_mode in KERNEL_MODES:
            session = QueryEngine(kernel_mode=kernel_mode)
            for engine in ENGINES:
                want = session.evaluate(
                    query, plain, length=cap, engine=engine
                )
                got = session.evaluate(
                    query, compressed, length=cap, engine=engine
                )
                assert got == want, (
                    f"{name}: engine={engine} kernel={kernel_mode} "
                    f"diverged between memory and slp storage"
                )


@settings(max_examples=4, deadline=None)
@pytest.mark.parametrize(
    "generator", sorted(GENERATORS), ids=sorted(GENERATORS)
)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_compression_invisible_on_every_workload_generator(generator, seed):
    _assert_compression_invisible(GENERATORS[generator](seed), cap=2)


#: Highly repetitive relations — the regime SLP compression targets.
_REPETITIVE = st.lists(
    st.tuples(
        st.sampled_from(["gc", "at", "g", ""]),
        st.integers(min_value=0, max_value=3),
    ).map(lambda pair: pair[0] * pair[1]),
    min_size=1,
    max_size=6,
)


@settings(max_examples=15, deadline=None)
@given(singles=_REPETITIVE, pairs=st.lists(
    st.tuples(
        st.sampled_from(["gcgc", "g", "c", ""]),
        st.sampled_from(["gc", "cg", ""]),
    ),
    min_size=1,
    max_size=4,
))
def test_compression_invisible_on_repetitive_relations(singles, pairs):
    db = Database(DNA, {"R1": pairs, "R2": [(s,) for s in singles]})
    _assert_compression_invisible(db, cap=2)


@pytest.mark.parametrize("workers", WORKER_COUNTS)
@pytest.mark.parametrize("kernel_mode", KERNEL_MODES)
def test_workers_agree_over_compressed_storage(workers, kernel_mode):
    """Shard workers re-intern pickled grammars and still agree."""
    db = GENERATORS["example"](7)
    compressed = db.with_storage("slp")
    session = QueryEngine(kernel_mode=kernel_mode)
    engine = ParallelEngine(workers=workers, shards=2, min_parallel_items=1)
    for name, query in _queries(db.alphabet):
        want = session.evaluate(query, db, length=2, engine="naive")
        got = session.evaluate(query, compressed, length=2, engine=engine)
        assert got == want, (
            f"{name}: parallel(workers={workers}, kernel={kernel_mode}) "
            f"diverged over slp storage"
        )
