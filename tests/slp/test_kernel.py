"""Unit, counter and equivalence tests for the v3 grammar kernel.

The v3 contract mirrors v2's: exact verdict agreement with the
reference search (hypothesis-driven below and in
``tests/slp/test_differential.py``), plus the grammar path's own
promise — acceptance work scales with *rules*, never expanded length.
"""

import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.alphabet import AB, DNA, LEFT_END, RIGHT_END
from repro.engine import QueryEngine
from repro.errors import AlphabetError, ArityError
from repro.fsa.kernel import KERNEL_MODES, kernel_for
from repro.fsa.machine import make_fsa
from repro.observability import Tracer, activate
from repro.slp import SLP, SLPKernel, compress, literal, repeat, slp_kernel_for
from repro.slp.kernel import MAX_SUMMARIES


def contains_ab():
    """A unidirectional machine accepting strings containing ``ab``."""
    return make_fsa(
        1,
        AB,
        "s",
        ["f"],
        [
            ("s", (LEFT_END,), "scan", (+1,)),
            ("scan", ("a",), "scan", (+1,)),
            ("scan", ("b",), "scan", (+1,)),
            ("scan", ("a",), "saw_a", (+1,)),
            ("saw_a", ("b",), "win", (+1,)),
            ("win", ("a",), "win", (+1,)),
            ("win", ("b",), "win", (+1,)),
            ("win", (RIGHT_END,), "f", (0,)),
        ],
    )


def two_way_machine():
    """An out-of-fragment machine (moves left) — v3 must decline it."""
    return make_fsa(
        1,
        AB,
        "s",
        ["f"],
        [
            ("s", (LEFT_END,), "fwd", (+1,)),
            ("fwd", ("a",), "fwd", (+1,)),
            ("fwd", ("b",), "back", (-1,)),
            ("back", ("a",), "back", (-1,)),
            ("back", (LEFT_END,), "f", (0,)),
        ],
    )


class TestGrammarPath:
    def test_grammar_verdicts_match_string_verdicts(self):
        kernel = slp_kernel_for(contains_ab())
        for text in ("", "a", "b", "ab", "ba", "bbab", "abab", "bbbb"):
            assert kernel.accepts((compress(text),)) == kernel.accepts(
                (text,)
            ), text

    def test_astronomical_input_answers_without_expanding(self):
        kernel = slp_kernel_for(contains_ab())
        # 2·10¹² characters — impossible to materialize, ~60 rules.
        assert kernel.accepts((repeat(compress("ba"), 10**12),))
        assert not kernel.accepts((repeat(literal("b"), 10**12),))

    def test_empty_grammar_is_the_empty_string(self):
        kernel = slp_kernel_for(contains_ab())
        assert kernel.accepts((compress(""),)) == kernel.accepts(("",))

    def test_batch_mixes_strings_and_grammars(self):
        kernel = slp_kernel_for(contains_ab())
        rows = [("ab",), (compress("ba"),), ("bb",), (compress("aab"),)]
        assert kernel.accepts_batch(rows) == (True, False, False, True)

    def test_arity_and_alphabet_validation_still_fire(self):
        kernel = slp_kernel_for(contains_ab())
        with pytest.raises(ArityError):
            kernel.accepts((compress("a"), compress("b")))
        with pytest.raises(AlphabetError):
            kernel.accepts((compress("xyz"),))

    def test_summaries_are_shared_across_calls(self):
        tracer = Tracer()
        kernel = slp_kernel_for(contains_ab())
        kernel._summaries.clear()
        block = compress("abba")
        with activate(tracer):
            kernel.accepts((block,))
            first = tracer.counters.get("kernel.slp_summaries", 0)
            kernel.accepts((repeat(block, 500),))
            second = tracer.counters.get("kernel.slp_summaries", 0)
        assert first > 0
        # The repeat reuses every rule of `block`: only the doubling
        # spine above it is new, logarithmic in the repeat count.
        assert second - first <= 2 * 500 .bit_length() + 2

    def test_summary_memo_is_bounded(self):
        kernel = slp_kernel_for(contains_ab())
        kernel._summaries.clear()
        # Force eviction with many distinct rules.
        kernel._summaries.update(
            {object(): None for _ in range(MAX_SUMMARIES)}
        )
        kernel.accepts((compress("ab"),))
        assert len(kernel._summaries) <= MAX_SUMMARIES


class TestDispatchAndCaching:
    def test_kernel_for_v3_returns_slp_kernel(self):
        kernel = kernel_for(contains_ab(), "v3")
        assert isinstance(kernel, SLPKernel)

    def test_v3_hits_counter(self):
        fsa = contains_ab()
        tracer = Tracer()
        with activate(tracer):
            first = kernel_for(fsa, "v3")
            second = kernel_for(fsa, "v3")
        assert first is second
        assert tracer.counters["kernel.v3_hits"] == 1

    def test_out_of_fragment_falls_back_to_v1(self):
        fsa = two_way_machine()
        tracer = Tracer()
        with activate(tracer):
            kernel = kernel_for(fsa, "v3")
        assert not isinstance(kernel, SLPKernel)
        assert tracer.counters["kernel.fallback"] == 1
        assert kernel.accepts(("aab",))

    def test_auto_still_resolves_to_v2(self):
        # v3 is explicit opt-in; the auto tier stays the v2 scan.
        kernel = kernel_for(contains_ab(), "auto")
        assert not isinstance(kernel, SLPKernel)

    def test_session_kernel_tiers_are_distinct(self):
        fsa = contains_ab()
        session = QueryEngine(kernel_mode="v3")
        v3 = session.kernel(fsa)
        v2 = session.kernel(fsa, mode="v2")
        v1 = session.kernel(fsa, mode="v1")
        assert isinstance(v3, SLPKernel)
        assert not isinstance(v2, SLPKernel)
        assert len({id(v1), id(v2), id(v3)}) == 3

    def test_unknown_session_mode_rejected(self):
        with pytest.raises(ValueError):
            QueryEngine(kernel_mode="v4")
        assert "v3" in KERNEL_MODES

    def test_pickled_machine_drops_v3_stash(self):
        fsa = contains_ab()
        slp_kernel_for(fsa)
        clone = pickle.loads(pickle.dumps(fsa))
        assert "_kernel_v3" not in clone.__dict__
        assert "_fragment" not in clone.__dict__

    def test_pickled_kernel_travels_as_its_machine(self):
        kernel = slp_kernel_for(contains_ab())
        clone = pickle.loads(pickle.dumps(kernel))
        assert isinstance(clone, SLPKernel)
        assert clone.accepts((repeat(compress("ba"), 10**9),))

    def test_classify_memo_counter(self):
        from repro.fsa.determinize import classify_fragment

        fsa = contains_ab()
        tracer = Tracer()
        with activate(tracer):
            classify_fragment(fsa)
            classify_fragment(fsa)
        assert tracer.counters["kernel.classify.hits"] == 1


class TestMultitape:
    def test_multitape_slp_cells_expand_and_agree(self):
        transitions = [("s", (LEFT_END, LEFT_END), "cmp", (+1, +1))]
        for char in AB:
            transitions.append(("cmp", (char, char), "cmp", (+1, +1)))
        transitions.append(("cmp", (RIGHT_END, RIGHT_END), "f", (0, 0)))
        equality = make_fsa(2, AB, "s", ["f"], transitions)
        kernel = kernel_for(equality, "v3")
        assert isinstance(kernel, SLPKernel)
        tracer = Tracer()
        with activate(tracer):
            assert kernel.accepts((compress("abab"), "abab"))
            assert not kernel.accepts((compress("ab"), compress("ba")))
        assert tracer.counters["kernel.slp_expanded"] == 3


@settings(max_examples=60, deadline=None)
@given(text=st.text(alphabet="ab", max_size=24))
def test_grammar_path_equals_v2_on_random_strings(text):
    fsa = contains_ab()
    v2 = kernel_for(fsa, "v2")
    v3 = kernel_for(fsa, "v3")
    assert v3.accepts((compress(text),)) == v2.accepts((text,))


@settings(max_examples=30, deadline=None)
@given(
    base=st.text(alphabet="acgt", min_size=1, max_size=4),
    reps=st.integers(min_value=1, max_value=64),
)
def test_grammar_path_equals_v2_on_repeats(base, reps):
    fsa = make_fsa(
        1,
        DNA,
        "s",
        ["f"],
        [
            ("s", (LEFT_END,), "scan", (+1,)),
            *[("scan", (c,), "scan", (+1,)) for c in DNA],
            ("scan", ("g",), "saw_g", (+1,)),
            ("saw_g", ("a",), "win", (+1,)),
            *[("win", (c,), "win", (+1,)) for c in DNA],
            ("win", (RIGHT_END,), "f", (0,)),
        ],
    )
    v2 = kernel_for(fsa, "v2")
    v3 = kernel_for(fsa, "v3")
    assert v3.accepts((repeat(compress(base), reps),)) == v2.accepts(
        (base * reps,)
    )


def test_slp_type_reexported():
    assert SLP is type(compress("ab"))
