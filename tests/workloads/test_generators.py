"""Tests for the synthetic workload generators."""

from repro.core.alphabet import AB, DNA
from repro.workloads import generators, oracles


class TestUniformStrings:
    def test_deterministic_by_seed(self):
        first = generators.uniform_strings(DNA, 10, 5, seed=3)
        second = generators.uniform_strings(DNA, 10, 5, seed=3)
        assert first == second
        assert first != generators.uniform_strings(DNA, 10, 5, seed=4)

    def test_lengths_respected(self):
        strings = generators.uniform_strings(AB, 50, 4, min_length=2, seed=0)
        assert all(2 <= len(s) <= 4 for s in strings)

    def test_alphabet_respected(self):
        strings = generators.uniform_strings(DNA, 30, 6, seed=1)
        assert all(set(s) <= set(DNA.symbols) for s in strings)


class TestPlantedMotif:
    def test_fraction_contains_motif(self):
        strings = generators.with_planted_motif(
            DNA, "gcgc", count=20, max_length=4, fraction=0.5, seed=2
        )
        hits = sum(1 for s in strings if "gcgc" in s)
        assert hits >= 10  # planted half, possibly more by chance

    def test_motif_validated(self):
        import pytest

        from repro.errors import AlphabetError

        with pytest.raises(AlphabetError):
            generators.with_planted_motif(DNA, "xyz", 5, 4)


class TestNearDuplicates:
    def test_within_edit_budget(self):
        base = "acgtac"
        strings = generators.near_duplicates(DNA, base, 20, max_edits=3, seed=4)
        assert all(
            oracles.edit_distance(base, s) <= 3 for s in strings
        )


class TestCopyLanguage:
    def test_strings_are_copy_translations(self):
        strings = generators.copy_language_strings(15, 4, seed=5)
        assert all(oracles.is_copy_translation(s) for s in strings)


class TestManifoldStrings:
    def test_pairs_are_manifolds(self):
        pairs = generators.manifold_strings(AB, 15, 3, 4, seed=6)
        assert all(oracles.is_manifold(x, y) for x, y in pairs)
        assert all(y for _, y in pairs)


class TestExampleDatabase:
    def test_shape(self):
        db = generators.example_database(AB, seed=7, size=5)
        assert db.arity("R1") == 2
        assert db.arity("R2") == 1
        assert len(db.relation("R1")) <= 5

    def test_explicit_contents(self):
        db = generators.example_database(
            AB, pairs=[("a", "b")], singles=["ab"]
        )
        assert db.relation("R1") == {("a", "b")}
        assert db.relation("R2") == {("ab",)}
