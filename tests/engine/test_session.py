"""Tests for QueryEngine sessions: cache keying, stats, batching."""

import pytest

from repro.core import shorthands as sh
from repro.core.alphabet import AB, Alphabet
from repro.core.database import Database
from repro.core.query import Query
from repro.core.syntax import And, exists, lift, rel
from repro.engine import QueryEngine
from repro.errors import SafetyError


def db() -> Database:
    return Database(
        AB,
        {
            "R1": [("a", "b"), ("ab", "ab"), ("b", "b")],
            "R2": [("ab",), ("b",), ("aab",)],
        },
    )


def generation_query() -> Query:
    return Query(
        ("x",),
        exists(
            ["y", "z"],
            And(
                And(rel("R2", "y"), rel("R2", "z")),
                lift(sh.concatenation("x", "y", "z")),
            ),
        ),
        AB,
    )


class TestCacheKeying:
    def test_structurally_equal_formulae_hit(self):
        session = QueryEngine()
        first = session.compile(sh.equals("x", "y"), AB)
        # An independently constructed but structurally equal formula.
        second = session.compile(sh.equals("x", "y"), AB)
        assert first is second
        stats = session.stats.caches["compile"]
        assert stats.hits == 1 and stats.misses == 1

    def test_different_alphabets_miss(self):
        session = QueryEngine()
        session.compile(sh.equals("x", "y"), AB)
        session.compile(sh.equals("x", "y"), Alphabet("cd"))
        stats = session.stats.caches["compile"]
        assert stats.hits == 0 and stats.misses == 2

    def test_explicit_default_layout_shares_entry(self):
        session = QueryEngine()
        implicit = session.compile(sh.equals("x", "y"), AB)
        explicit = session.compile(sh.equals("x", "y"), AB, ("x", "y"))
        assert implicit is explicit
        assert session.stats.caches["compile"].hits == 1

    def test_different_layouts_are_distinct(self):
        session = QueryEngine()
        xy = session.compile(sh.equals("x", "y"), AB, ("x", "y"))
        yx = session.compile(sh.equals("x", "y"), AB, ("y", "x"))
        assert xy.variables != yx.variables
        assert session.stats.caches["compile"].misses == 2

    def test_structurally_equal_machines_share_kernel(self):
        session = QueryEngine()
        first = session.compile(sh.equals("x", "y"), AB).fsa
        # An independently constructed but structurally equal machine.
        other = QueryEngine().compile(sh.equals("x", "y"), AB).fsa
        assert first is not other and first == other
        assert session.kernel(first) is session.kernel(other)
        stats = session.stats.caches["kernel"]
        assert stats.hits == 1 and stats.misses == 1

    def test_different_machines_get_distinct_kernels(self):
        session = QueryEngine()
        eq = session.compile(sh.equals("x", "y"), AB).fsa
        prefix = session.compile(sh.prefix_of("x", "y"), AB).fsa
        assert session.kernel(eq) is not session.kernel(prefix)
        stats = session.stats.caches["kernel"]
        assert stats.hits == 0 and stats.misses == 2

    def test_algebra_route_populates_kernel_cache(self):
        session = QueryEngine()
        query = Query(
            ("x", "y"),
            And(rel("R1", "x", "y"), lift(sh.prefix_of("x", "y"))),
            AB,
        )
        first = session.evaluate(query, db(), length=4, engine="algebra")
        second = session.evaluate(query, db(), length=4, engine="algebra")
        assert first == second
        stats = session.stats.caches["kernel"]
        assert stats.lookups > 0

    def test_limit_reports_cached_including_negative(self):
        session = QueryEngine()
        safe = rel("R2", "x")
        unsafe = Query(
            ("y",),
            exists("x", And(rel("R2", "x"), lift(sh.manifold("y", "x")))),
            AB,
        ).formula
        assert session.limit_report(safe, AB) is session.limit_report(safe, AB)
        assert session.limit_report(unsafe, AB) is None
        assert session.limit_report(unsafe, AB) is None
        stats = session.stats.caches["limit"]
        assert stats.hits == 2 and stats.misses == 2

    def test_uncertified_query_still_raises(self):
        session = QueryEngine()
        unsafe = Query(
            ("y",),
            exists("x", And(rel("R2", "x"), lift(sh.manifold("y", "x")))),
            AB,
        )
        with pytest.raises(SafetyError):
            session.evaluate(unsafe, db())


class TestWarmEvaluation:
    def test_warm_run_hits_compile_specialize_limit(self):
        session = QueryEngine()
        q = generation_query()
        cold = session.evaluate(q, db())
        warm = session.evaluate(q, db())
        assert cold == warm
        caches = session.stats.caches
        assert caches["compile"].hits > 0
        assert caches["specialize"].hits > 0
        assert caches["generate"].hits > 0
        assert caches["limit"].hits > 0
        assert caches["ir"].hits > 0

    def test_sessions_are_isolated(self):
        q = generation_query()
        first = QueryEngine()
        first.evaluate(q, db())
        first.evaluate(q, db())
        second = QueryEngine()
        second.evaluate(q, db())
        # The second session inherits nothing: it repeats the first
        # session's cold misses instead of hitting its entries.
        assert (
            second.stats.caches["compile"].misses
            == first.stats.caches["compile"].misses
        )
        assert (
            second.stats.caches["compile"].hits
            < first.stats.caches["compile"].hits
        )

    def test_warm_algebra_hits_translation(self):
        session = QueryEngine()
        q = generation_query()
        a = session.evaluate(q, db(), length=6, engine="algebra")
        b = session.evaluate(q, db(), length=6, engine="algebra")
        assert a == b
        assert session.stats.caches["optimize"].hits >= 1


class TestDomainPool:
    def test_prefix_sharing(self):
        session = QueryEngine()
        long = session.domain_for(AB, 3)
        short = session.domain_for(AB, 1)
        assert long == tuple(AB.strings(3))
        assert short == tuple(AB.strings(1))
        stats = session.stats.caches["domain"]
        assert stats.hits == 1 and stats.misses == 1

    def test_reserve_enumerates_once(self):
        session = QueryEngine()
        session.reserve_domain(AB, 4)
        assert session.domain_for(AB, 2) == tuple(AB.strings(2))
        assert session.domain_for(AB, 4) == tuple(AB.strings(4))
        stats = session.stats.caches["domain"]
        assert stats.misses == 1 and stats.hits == 1

    def test_negative_length_is_empty(self):
        assert QueryEngine().domain_for(AB, -1) == ()


class TestBatchEvaluation:
    def test_evaluate_many_matches_individual(self):
        queries = [
            Query(
                ("x", "y"),
                And(rel("R1", "x", "y"), lift(sh.equals("x", "y"))),
                AB,
            ),
            Query(("x",), rel("R2", "x"), AB),
            generation_query(),
        ]
        batch = QueryEngine().evaluate_many(queries, db())
        individual = [q.evaluate(db()) for q in queries]
        assert batch == individual

    def test_batch_shares_compiled_artifacts(self):
        session = QueryEngine()
        q = generation_query()
        results = session.evaluate_many([q, q, q], db())
        assert results[0] == results[1] == results[2]
        assert session.stats.caches["compile"].misses == 1
        assert session.stats.caches["compile"].hits > 0

    def test_batch_with_explicit_length(self):
        session = QueryEngine()
        queries = [Query(("x",), rel("R2", "x"), AB)] * 2
        results = session.evaluate_many(
            queries, db(), length=3, engine="naive"
        )
        assert results[0] == results[1] == {("ab",), ("b",), ("aab",)}

    def test_batch_reserves_max_bound(self):
        session = QueryEngine()
        narrow = Query(  # certified bound 2
            ("x", "y"),
            And(rel("R1", "x", "y"), lift(sh.equals("x", "y"))),
            AB,
        )
        wide = Query(("x",), rel("R2", "x"), AB)  # certified bound 3
        session.evaluate_many([narrow, wide], db(), engine="naive")
        # One enumeration at the batch maximum (3) serves both queries:
        # the narrow query's domain is a prefix slice of it.
        stats = session.stats.caches["domain"]
        assert stats.misses == 1 and stats.hits == 1


class TestStats:
    def test_snapshot_shape(self):
        session = QueryEngine()
        q = Query(("x",), rel("R2", "x"), AB)
        session.evaluate(q, db())
        snapshot = session.stats.snapshot()
        assert "compile" in snapshot["caches"]
        assert snapshot["evaluations"]["auto"] == 1
        assert snapshot["engine_seconds"]["auto"] >= 0.0

    def test_describe_mentions_caches_and_engines(self):
        session = QueryEngine()
        session.evaluate(Query(("x",), rel("R2", "x"), AB), db())
        text = session.stats.describe()
        assert "cache compile" in text and "engine auto" in text
