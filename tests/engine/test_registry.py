"""Tests for the engine registry and the Engine protocol."""

import pytest

from repro.core.alphabet import AB
from repro.core.database import Database
from repro.core.query import Query
from repro.core.syntax import rel
from repro.engine import (
    AutoEngine,
    NaiveEngine,
    QueryEngine,
    available_engines,
    get_engine,
    register_engine,
    unregister_engine,
)
from repro.errors import EvaluationError


def db() -> Database:
    return Database(AB, {"R2": [("ab",), ("b",)]})


class TestRegistry:
    def test_defaults_registered(self):
        assert {"naive", "planner", "algebra", "auto"} <= set(
            available_engines()
        )

    def test_get_engine_by_name(self):
        assert get_engine("naive") is get_engine("naive")
        assert get_engine("auto").name == "auto"

    def test_get_engine_passes_objects_through(self):
        engine = NaiveEngine()
        assert get_engine(engine) is engine

    def test_unknown_name_raises(self):
        with pytest.raises(EvaluationError):
            get_engine("quantum")

    def test_non_engine_object_raises(self):
        with pytest.raises(EvaluationError):
            get_engine(object())

    def test_register_custom_engine(self):
        class Constant:
            name = "constant-answer"

            def evaluate(self, query, db, session, *, length=None, domain=None):
                return frozenset({("hi",)})

        try:
            register_engine(Constant())
            assert "constant-answer" in available_engines()
            q = Query(("x",), rel("R2", "x"), AB)
            assert q.evaluate(db(), engine="constant-answer") == {("hi",)}
        finally:
            unregister_engine("constant-answer")
        assert "constant-answer" not in available_engines()

    def test_duplicate_registration_needs_replace(self):
        with pytest.raises(EvaluationError):
            register_engine(NaiveEngine())  # "naive" is taken
        register_engine(NaiveEngine(), replace=True)  # restores a fresh one

    def test_nameless_engine_rejected(self):
        class Nameless:
            def evaluate(self, query, db, session, *, length=None, domain=None):
                return frozenset()

        with pytest.raises(EvaluationError):
            register_engine(Nameless())


class TestEngineObjects:
    def test_query_accepts_engine_object(self):
        q = Query(("x",), rel("R2", "x"), AB)
        by_name = q.evaluate(db(), length=2, engine="naive")
        by_object = q.evaluate(db(), length=2, engine=NaiveEngine())
        assert by_name == by_object == {("ab",), ("b",)}

    def test_session_accepts_engine_object(self):
        session = QueryEngine()
        q = Query(("x",), rel("R2", "x"), AB)
        assert session.evaluate(q, db(), engine=AutoEngine()) == {
            ("ab",),
            ("b",),
        }

    def test_unknown_engine_via_query(self):
        q = Query(("x",), rel("R2", "x"), AB)
        with pytest.raises(EvaluationError):
            q.evaluate(db(), length=1, engine="quantum")
