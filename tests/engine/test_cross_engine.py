"""Cross-engine equivalence on the synthetic workload generators.

Every registered strategy implements the same truncation semantics
``⟦φ⟧^l_db``, so on any database and any bound covering the stored
strings the naive, planner, algebra and auto engines must return
identical answers — and a warm (cached) session must agree with a
cold one.
"""

import pytest

from repro.core import shorthands as sh
from repro.core.alphabet import AB, Alphabet
from repro.core.query import Query
from repro.core.syntax import And, exists, lift, rel
from repro.engine import QueryEngine
from repro.workloads.generators import (
    example_database,
    near_duplicates,
    uniform_strings,
    with_planted_motif,
)

DNA = Alphabet("acgt")


def _databases():
    yield "uniform-ab", example_database(AB, seed=3, size=4, max_length=3)
    yield "motif", example_database(
        AB,
        singles=with_planted_motif(AB, "ab", count=5, max_length=3, seed=5),
        seed=7,
        size=3,
        max_length=2,
    )
    yield "near-dup", example_database(
        AB,
        singles=near_duplicates(AB, "aba", count=4, max_edits=1, seed=11),
        seed=13,
        size=3,
        max_length=3,
    )
    yield "dna", example_database(
        DNA,
        singles=uniform_strings(DNA, 3, 2, seed=17),
        seed=19,
        size=2,
        max_length=2,
    )


def _queries(alphabet):
    yield "select-equal", Query(
        ("x", "y"),
        And(rel("R1", "x", "y"), lift(sh.equals("x", "y"))),
        alphabet,
    )
    yield "select-prefix", Query(
        ("x", "y"),
        And(rel("R1", "x", "y"), lift(sh.prefix_of("x", "y"))),
        alphabet,
    )
    yield "project", Query(
        ("x",), exists("y", rel("R1", "x", "y")), alphabet
    )
    yield "join", Query(
        ("x",),
        exists("y", And(rel("R1", "x", "y"), rel("R2", "y"))),
        alphabet,
    )
    yield "generate-concat", Query(
        ("x",),
        exists(
            ["y", "z"],
            And(
                And(rel("R2", "y"), rel("R2", "z")),
                lift(sh.concatenation("x", "y", "z")),
            ),
        ),
        alphabet,
    )


CASES = [
    pytest.param(db, query, id=f"{dbname}-{qname}")
    for dbname, db in _databases()
    for qname, query in _queries(db.alphabet)
]


@pytest.mark.parametrize("db,query", CASES)
def test_all_engines_agree(db, query):
    # A bound covering every stored string makes the planner's cap
    # semantics coincide with naive truncation semantics; all engines
    # then compute the same ⟦φ⟧^l_db.
    bound = db.max_string_length() + 1
    session = QueryEngine()
    answers = {
        name: session.evaluate(query, db, length=bound, engine=name)
        for name in ("naive", "planner", "algebra", "auto")
    }
    assert (
        answers["naive"]
        == answers["planner"]
        == answers["algebra"]
        == answers["auto"]
    )


@pytest.mark.parametrize("db,query", CASES)
def test_cached_run_matches_cold(db, query):
    bound = db.max_string_length() + 1
    warm = QueryEngine()
    first = warm.evaluate(query, db, length=bound, engine="planner")
    second = warm.evaluate(query, db, length=bound, engine="planner")
    cold = QueryEngine().evaluate(query, db, length=bound, engine="planner")
    assert first == second == cold


def test_auto_without_length_matches_naive_at_certified_bound():
    db = example_database(AB, seed=23, size=4, max_length=3)
    query = Query(
        ("x", "y"),
        And(rel("R1", "x", "y"), lift(sh.prefix_of("x", "y"))),
        AB,
    )
    session = QueryEngine()
    bound = session.certified_length(query, db)
    assert session.evaluate(query, db) == session.evaluate(
        query, db, length=bound, engine="naive"
    )
