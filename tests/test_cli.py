"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


@pytest.fixture()
def db_file(tmp_path):
    path = tmp_path / "db.json"
    path.write_text(
        json.dumps(
            {
                "R1": [["ab", "ab"], ["ab", "ba"], ["b", "b"]],
                "R2": [["ab"], ["b"]],
            }
        )
    )
    return str(path)


class TestCheck:
    def test_satisfied(self, capsys):
        code = main(
            [
                "check",
                "--alphabet",
                "ab",
                "([x,y]l(x = y))* . [x,y]l(x = y = eps)",
                "x=abab",
                "y=abab",
            ]
        )
        assert code == 0
        assert "satisfied" in capsys.readouterr().out

    def test_not_satisfied(self, capsys):
        code = main(
            [
                "check",
                "--alphabet",
                "ab",
                "[x]l(x = 'a')",
                "x=b",
            ]
        )
        assert code == 1

    def test_missing_binding(self, capsys):
        code = main(["check", "--alphabet", "ab", "[x]l", "y=a"])
        assert code == 2
        assert "missing bindings" in capsys.readouterr().err

    def test_bad_binding_syntax(self, capsys):
        code = main(["check", "--alphabet", "ab", "[x]l", "x"])
        assert code == 2


class TestQuery:
    def test_selection_query(self, capsys, db_file):
        code = main(
            [
                "query",
                "--alphabet",
                "ab",
                "--db",
                db_file,
                "--head=x",
                "--length",
                "3",
                "R2(x) & [x]l(x = 'a')",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert out.strip() == "ab"

    def test_generation_query_auto_length(self, capsys, db_file):
        code = main(
            [
                "query",
                "--alphabet",
                "ab",
                "--db",
                db_file,
                "--head=x",
                "exists y, z: R2(y) & R2(z) & "
                "([x,y]l(x = y))* . ([x,z]l(x = z))* . [x,y,z]l(x = y = z = eps)",
            ]
        )
        assert code == 0
        lines = capsys.readouterr().out.split()
        assert "abab" in lines and "bb" in lines

    def test_parallel_workers_and_stats(self, capsys, db_file):
        sequential = main(
            [
                "query",
                "--alphabet",
                "ab",
                "--db",
                db_file,
                "--head=x",
                "--length",
                "3",
                "--engine",
                "naive",
                "R2(x) & [x]l(x = 'a')",
            ]
        )
        assert sequential == 0
        expected = capsys.readouterr().out

        code = main(
            [
                "query",
                "--alphabet",
                "ab",
                "--db",
                db_file,
                "--head=x",
                "--length",
                "3",
                "--engine",
                "parallel",
                "--workers",
                "2",
                "--shards",
                "3",
                "--stats",
                "R2(x) & [x]l(x = 'a')",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert captured.out == expected
        assert "parallel runs=1" in captured.err

    def test_explicit_engine_choice(self, capsys, db_file):
        for engine in ("naive", "planner", "algebra", "auto"):
            code = main(
                [
                    "query",
                    "--alphabet",
                    "ab",
                    "--db",
                    db_file,
                    "--head=x",
                    "--length",
                    "3",
                    "--engine",
                    engine,
                    "R2(x) & [x]l(x = 'a')",
                ]
            )
            assert code == 0
            assert capsys.readouterr().out.strip() == "ab"

    def test_stats_flag_reports_caches(self, capsys, db_file):
        code = main(
            [
                "query",
                "--alphabet",
                "ab",
                "--db",
                db_file,
                "--head=x",
                "--stats",
                "R2(x) & [x]l(x = 'a')",
            ]
        )
        assert code == 0
        err = capsys.readouterr().err
        assert "cache compile" in err
        assert "engine auto" in err

    def test_self_describing_db(self, capsys, tmp_path):
        path = tmp_path / "described.json"
        path.write_text(
            json.dumps(
                {"alphabet": "ab", "relations": {"R2": [["ab"], ["b"]]}}
            )
        )
        code = main(
            [
                "query",
                "--alphabet",
                "ab",
                "--db",
                str(path),
                "--head=x",
                "--length",
                "3",
                "R2(x)",
            ]
        )
        assert code == 0
        assert capsys.readouterr().out.split() == ["ab", "b"]

    def test_mismatched_embedded_alphabet_fails(self, capsys, tmp_path):
        path = tmp_path / "described.json"
        path.write_text(
            json.dumps({"alphabet": "acgt", "relations": {"R2": [["a"]]}})
        )
        code = main(
            [
                "query",
                "--alphabet",
                "ab",
                "--db",
                str(path),
                "--head=x",
                "--length",
                "1",
                "R2(x)",
            ]
        )
        assert code == 2
        assert "alphabet" in capsys.readouterr().err

    def test_epsilon_rendering(self, capsys, db_file):
        code = main(
            [
                "query",
                "--alphabet",
                "ab",
                "--db",
                db_file,
                "--head=x",
                "--length",
                "2",
                "{_} & !R2(x)",
            ]
        )
        assert code == 0
        assert "ε" in capsys.readouterr().out


class TestObservabilityFlags:
    QUERY = "R2(x) & [x]l(x = 'a')"

    def _run(self, db_file, *extra):
        return main(
            [
                "query",
                "--alphabet",
                "ab",
                "--db",
                db_file,
                "--head=x",
                "--length",
                "3",
                *extra,
                self.QUERY,
            ]
        )

    def test_metrics_out_emits_schema_stable_json(self, capsys, db_file, tmp_path):
        path = tmp_path / "metrics.json"
        code = self._run(
            db_file,
            "--engine",
            "parallel",
            "--workers",
            "2",
            "--shards",
            "3",
            "--metrics-out",
            str(path),
        )
        assert code == 0
        captured = capsys.readouterr()
        assert captured.out.strip() == "ab"
        assert "metrics written to" in captured.err
        data = json.loads(path.read_text(encoding="utf-8"))
        assert data["schema"] == "repro.trace-report/3"
        assert data["enabled"] is True
        assert set(data["stages"]) == {
            "compile",
            "specialize",
            "normalize",
            "translate",
            "optimize",
            "plan",
            "shard",
            "execute",
            "fold",
            "delta",
        }
        for bucket in data["stages"].values():
            assert set(bucket) == {"spans", "seconds"}
        assert data["spans"], "traced CLI run recorded no spans"

    def test_trace_prints_span_tree(self, capsys, db_file):
        code = self._run(db_file, "--trace")
        assert code == 0
        err = capsys.readouterr().err
        assert "engine.evaluate" in err

    def test_profile_prints_stage_table(self, capsys, db_file):
        code = self._run(db_file, "--profile")
        assert code == 0
        err = capsys.readouterr().err
        assert "stage        spans    seconds" in err
        for stage in ("compile", "translate", "fold"):
            assert stage in err

    def test_stats_alone_leaves_tracing_disabled(self, capsys, db_file):
        code = self._run(db_file, "--stats")
        assert code == 0
        err = capsys.readouterr().err
        assert "cache compile" in err
        assert "trace spans" not in err


class TestCompile:
    def test_text_listing(self, capsys):
        code = main(["compile", "--alphabet", "ab", "[x]l(x = 'a')"])
        assert code == 0
        out = capsys.readouterr().out
        assert "tapes: x" in out
        assert "FSA" in out

    def test_dot_output(self, capsys):
        code = main(["compile", "--alphabet", "ab", "--dot", "[x]l"])
        assert code == 0
        assert "digraph" in capsys.readouterr().out


class TestLimit:
    def test_limited_direction(self, capsys):
        code = main(
            [
                "limit",
                "--alphabet",
                "ab",
                "--inputs=x",
                "--outputs=y",
                "([x,y]l(x = y))* . [x,y]l(x = y = eps)",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "limited: True" in out

    def test_unlimited_direction(self, capsys):
        code = main(
            [
                "limit",
                "--alphabet",
                "ab",
                "--outputs=y",
                "([y]l(y = 'a'))* . [y]l(y = eps)",
            ]
        )
        assert code == 1
        assert "limited: False" in capsys.readouterr().out
