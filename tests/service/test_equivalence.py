"""Byte-identical answers: the daemon vs direct session evaluation.

The acceptance criterion for the service layer: for every engine, the
rows a client reads off the wire are exactly
``sorted(QueryEngine().evaluate(query, db, ...))`` — same strings,
same order, same types after decoding.  The comparison goes through
the JSON wire form on both sides, so any encoding drift (tuple/list,
unicode, empty string) fails loudly.
"""

import json

import pytest

from repro.core.alphabet import AB
from repro.core.parser import parse_formula
from repro.core.query import Query
from repro.engine import QueryEngine
from repro.service import ServiceClient, serve_in_thread
from repro.service.protocol import rows_to_wire

ENGINES = ("naive", "planner", "algebra", "auto")

#: ``(formula, head, length)`` — relational scans, joins, existential
#: quantification, lifted string constraints with generation.
WORKLOAD = [
    ("R2(x)", ("x",), 3),
    ("R1(x, y)", ("x", "y"), 3),
    ("exists y: R1(x, y) & R2(x)", ("x",), 3),
    (
        "exists y, z: R2(y) & R2(z) & "
        "([x,y]l(x = y))* . ([x,z]l(x = z))* . [x,y,z]l(x = y = z = eps)",
        ("x",),
        4,
    ),
]


@pytest.fixture(scope="module")
def served(request):
    from repro.core.database import Database

    db = Database(
        AB,
        {
            "R1": [("a", "ab"), ("b", "ba")],
            "R2": [("a",), ("ab",), ("b",)],
        },
    )
    handle = serve_in_thread(db)
    client = ServiceClient(*handle.address)
    yield db, client
    client.close()
    handle.stop()


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize(
    "formula,head,length",
    WORKLOAD,
    ids=[entry[0][:32] for entry in WORKLOAD],
)
def test_served_rows_match_direct_evaluation(
    served, engine, formula, head, length
):
    db, client = served
    query = Query(tuple(head), parse_formula(formula), AB)
    direct = QueryEngine().evaluate(query, db, length=length, engine=engine)
    remote = client.query(
        formula, list(head), length=length, engine=engine
    )
    # Compare through the canonical wire encoding: byte-identical.
    assert json.dumps(rows_to_wire(direct)) == json.dumps(
        [list(row) for row in remote]
    )


def test_batch_matches_member_by_member(served):
    db, client = served
    batched = client.batch(
        [(formula, list(head)) for formula, head, _ in WORKLOAD[:3]],
        length=3,
    )
    for (formula, head, _), remote in zip(WORKLOAD[:3], batched):
        query = Query(tuple(head), parse_formula(formula), AB)
        direct = QueryEngine().evaluate(query, db, length=3)
        assert rows_to_wire(direct) == [list(row) for row in remote]


def test_empty_answer_sets_round_trip(served):
    db, client = served
    # No R1 pair has equal components at these lengths.
    formula = "R1(x, x)"
    remote = client.query(formula, ["x"], length=3)
    query = Query(("x",), parse_formula(formula), AB)
    direct = QueryEngine().evaluate(query, db, length=3)
    assert remote == sorted(direct) == []


def test_empty_string_columns_survive_the_wire(served):
    db, client = served
    # ε is a legitimate answer string; JSON must not mangle it.
    formula = "[x]l(x = eps)"
    remote = client.query(formula, ["x"], length=2)
    query = Query(("x",), parse_formula(formula), AB)
    direct = QueryEngine().evaluate(query, db, length=2)
    assert rows_to_wire(direct) == [list(row) for row in remote]
    assert ("",) in {tuple(row) for row in remote}
