"""The session pool: slot accounting, shared session, honest release."""

import asyncio
import threading
import time

import pytest

from repro.service import SessionPool


def run(coro):
    return asyncio.run(coro)


class TestConfiguration:
    def test_size_must_be_positive(self):
        with pytest.raises(ValueError):
            SessionPool(size=0)

    def test_one_shared_session(self):
        pool = SessionPool(size=3)
        assert pool.session is pool.session
        pool.shutdown()

    def test_adopts_a_provided_session(self):
        from repro.engine import QueryEngine

        session = QueryEngine()
        pool = SessionPool(size=1, session=session)
        assert pool.session is session
        pool.shutdown()


class TestSlots:
    def test_acquire_release_accounting(self):
        async def scenario():
            pool = SessionPool(size=2)
            assert not pool.busy
            await pool.acquire()
            await pool.acquire()
            assert pool.busy
            assert pool.active == 2
            assert pool.waiting == 0
            pool.release()
            pool.release()
            assert pool.active == 0
            assert pool.served == 2
            pool.shutdown()
            return pool.stats()

        stats = run(scenario())
        assert stats["peak_active"] == 2
        assert stats["peak_waiting"] == 0

    def test_waiters_are_counted_only_when_blocked(self):
        async def scenario():
            pool = SessionPool(size=1)
            await pool.acquire()

            async def contender():
                await pool.acquire()
                pool.release()

            task = asyncio.create_task(contender())
            await asyncio.sleep(0.05)
            waiting_while_blocked = pool.waiting
            pool.release()
            await task
            pool.shutdown()
            return waiting_while_blocked, pool.peak_waiting

        blocked, peak = run(scenario())
        assert blocked == 1
        assert peak == 1

    def test_run_releases_slot_only_when_thread_finishes(self):
        """An abandoned evaluation keeps its slot until it completes."""
        release_gate = threading.Event()

        def slow():
            release_gate.wait(5.0)
            return "done"

        async def scenario():
            pool = SessionPool(size=1)
            await pool.acquire()
            future = pool.run(slow)
            with pytest.raises(asyncio.TimeoutError):
                await asyncio.wait_for(asyncio.shield(future), 0.05)
            # The coroutine gave up, but the thread still runs: the
            # slot must remain occupied.
            assert pool.active == 1
            release_gate.set()
            assert await future == "done"
            deadline = time.monotonic() + 5.0
            while pool.active and time.monotonic() < deadline:
                await asyncio.sleep(0.01)
            assert pool.active == 0
            assert pool.served == 1
            pool.shutdown()

        run(scenario())

    def test_run_propagates_exceptions(self):
        async def scenario():
            pool = SessionPool(size=1)
            await pool.acquire()

            def boom():
                raise ValueError("evaluation failed")

            with pytest.raises(ValueError, match="evaluation failed"):
                await pool.run(boom)
            pool.shutdown()

        run(scenario())

    def test_drain_waits_for_active_work(self):
        async def scenario():
            pool = SessionPool(size=1)
            await pool.acquire()
            future = pool.run(lambda: time.sleep(0.1))
            await pool.drain()
            assert pool.active == 0
            assert future.done()
            pool.shutdown()

        run(scenario())
