"""The ``repro client`` / ``repro serve`` command-line front ends.

The client commands run in-process through :func:`repro.cli.main`
against a daemon hosted by :func:`serve_in_thread`, so stdout/stderr
and exit codes are asserted directly.  The serve command is exercised
as a real subprocess — port announcement on stderr, a live query
against it, and the SIGTERM drain handshake.
"""

import json
import re
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import main
from repro.core.alphabet import AB
from repro.core.database import Database
from repro.service import ServiceClient, serve_in_thread

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


@pytest.fixture(scope="module")
def daemon():
    db = Database(
        AB,
        {
            "R1": [("a", "ab"), ("b", "ba")],
            "R2": [("a",), ("ab",), ("b",)],
        },
    )
    handle = serve_in_thread(db)
    yield handle
    handle.stop()


def _client_args(daemon, *extra):
    host, port = daemon.address
    return ["client", "--host", host, "--port", str(port), *extra]


class TestClientCommand:
    def test_query_prints_rows_and_count(self, daemon, capsys):
        rc = main(
            _client_args(
                daemon, "--head", "x", "--length", "3", "R2(x)"
            )
        )
        captured = capsys.readouterr()
        assert rc == 0
        assert captured.out.splitlines() == ["a", "ab", "b"]
        assert "-- 3 tuple(s)" in captured.err

    def test_empty_string_prints_epsilon(self, daemon, capsys):
        rc = main(
            _client_args(
                daemon, "--head", "x", "--length", "2", "[x]l(x = eps)"
            )
        )
        captured = capsys.readouterr()
        assert rc == 0
        assert "ε" in captured.out.splitlines()

    def test_health_prints_json(self, daemon, capsys):
        rc = main(_client_args(daemon, "--health"))
        captured = capsys.readouterr()
        assert rc == 0
        document = json.loads(captured.out)
        assert document["status"] == "ok"

    def test_stats_prints_json(self, daemon, capsys):
        rc = main(_client_args(daemon, "--stats"))
        captured = capsys.readouterr()
        assert rc == 0
        document = json.loads(captured.out)
        assert "service" in document
        assert "pool" in document

    def test_explain_prints_plan_text(self, daemon, capsys):
        rc = main(
            _client_args(
                daemon, "--head", "x", "--length", "3", "--explain", "R2(x)"
            )
        )
        captured = capsys.readouterr()
        assert rc == 0
        assert captured.out.strip()

    def test_missing_formula_is_a_usage_error(self, daemon, capsys):
        rc = main(_client_args(daemon))
        captured = capsys.readouterr()
        assert rc == 2
        assert "formula is required" in captured.err

    def test_unreachable_server_exits_two(self, capsys):
        rc = main(
            ["client", "--host", "127.0.0.1", "--port", "1", "--health"]
        )
        captured = capsys.readouterr()
        assert rc == 2
        assert "cannot reach 127.0.0.1:1" in captured.err

    def test_server_side_error_exits_two(self, daemon, capsys):
        rc = main(
            _client_args(daemon, "--head", "x", "--length", "3", "R2(x")
        )
        captured = capsys.readouterr()
        assert rc == 2
        assert "error:" in captured.err


class TestServeCommand:
    def test_serve_announces_answers_and_drains_on_sigterm(self, tmp_path):
        db_path = tmp_path / "db.json"
        db_path.write_text(
            json.dumps({"R2": [["a"], ["ab"], ["b"]]})
        )
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--alphabet", "ab", "--db", str(db_path),
                "--host", "127.0.0.1", "--port", "0",
            ],
            env={"PYTHONPATH": REPO_SRC, "PATH": "/usr/bin:/bin"},
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            banner = process.stderr.readline()
            match = re.search(r"on 127\.0\.0\.1:(\d+)", banner)
            assert match, f"no port announcement in {banner!r}"
            port = int(match.group(1))
            with ServiceClient("127.0.0.1", port) as client:
                rows = client.query("R2(x)", ["x"], length=3)
            assert rows == [("a",), ("ab",), ("b",)]
            process.send_signal(signal.SIGTERM)
            process.wait(timeout=15.0)
            remainder = process.stderr.read()
            assert process.returncode == 0
            assert "-- draining" in remainder
            assert "-- drained, bye" in remainder
        finally:
            if process.poll() is None:  # pragma: no cover - cleanup
                process.kill()
                process.wait()
