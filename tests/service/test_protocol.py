"""Unit tests for the wire format: framing, validation, error typing."""

import pytest

from repro.errors import (
    AdmissionError,
    DeadlineError,
    EvaluationError,
    ParseError,
    ServiceError,
    ServiceProtocolError,
)
from repro.service.protocol import (
    ERR_ADMISSION,
    ERR_DEADLINE,
    ERR_EVALUATION,
    ERR_PARSE,
    OPS,
    decode_frame,
    encode_frame,
    error_response,
    ok_response,
    parse_request,
    raise_for_error,
    rows_from_wire,
    rows_to_wire,
)


class TestFraming:
    def test_round_trip(self):
        payload = {"id": 1, "op": "query", "params": {"head": ["x"]}}
        assert decode_frame(encode_frame(payload).rstrip(b"\n")) == payload

    def test_encoding_is_deterministic_compact_and_terminated(self):
        frame = encode_frame({"b": 2, "a": 1})
        assert frame == b'{"a":1,"b":2}\n'

    def test_oversized_frame_refused(self):
        with pytest.raises(ServiceProtocolError, match="exceeds"):
            encode_frame({"blob": "x" * 100}, max_bytes=50)

    def test_unserializable_payload_refused(self):
        with pytest.raises(ServiceProtocolError, match="JSON"):
            encode_frame({"bad": object()})

    def test_decode_rejects_invalid_json(self):
        with pytest.raises(ServiceProtocolError, match="undecodable"):
            decode_frame(b"{nope")

    def test_decode_rejects_non_objects(self):
        with pytest.raises(ServiceProtocolError, match="object"):
            decode_frame(b"[1, 2]")

    def test_decode_rejects_invalid_utf8(self):
        with pytest.raises(ServiceProtocolError):
            decode_frame(b'"\xff\xfe"')


class TestParseRequest:
    def test_minimal_request(self):
        request = parse_request({"op": "health"})
        assert request.op == "health"
        assert request.id is None
        assert dict(request.params) == {}
        assert request.deadline is None

    def test_full_request(self):
        request = parse_request(
            {"id": "r1", "op": "query", "params": {"length": 3},
             "deadline": 2}
        )
        assert request.id == "r1"
        assert request.params["length"] == 3
        assert request.deadline == 2.0

    def test_missing_op(self):
        with pytest.raises(ServiceProtocolError, match="op"):
            parse_request({"id": 1})

    def test_unknown_op(self):
        with pytest.raises(ServiceProtocolError, match="unknown op"):
            parse_request({"op": "telepathy"})

    def test_all_declared_ops_accepted(self):
        for op in OPS:
            assert parse_request({"op": op}).op == op

    def test_params_must_be_object(self):
        with pytest.raises(ServiceProtocolError, match="params"):
            parse_request({"op": "query", "params": [1]})

    @pytest.mark.parametrize("deadline", [0, -1, "soon", True])
    def test_bad_deadlines(self, deadline):
        with pytest.raises(ServiceProtocolError, match="deadline"):
            parse_request({"op": "query", "deadline": deadline})


class TestEnvelopes:
    def test_ok_envelope(self):
        assert ok_response("r1", {"rows": []}) == {
            "id": "r1", "ok": True, "result": {"rows": []}
        }

    def test_error_envelope_carries_extras(self):
        response = error_response(7, ERR_ADMISSION, "no", reason="queue-full")
        assert response["ok"] is False
        assert response["error"]["code"] == ERR_ADMISSION
        assert response["error"]["reason"] == "queue-full"


class TestRaiseForError:
    def test_admission_error_keeps_machine_readable_fields(self):
        with pytest.raises(AdmissionError) as info:
            raise_for_error({
                "code": ERR_ADMISSION, "message": "too big",
                "reason": "cost-exceeded", "est_cost": 9.0, "max_cost": 1.0,
            })
        assert info.value.reason == "cost-exceeded"
        assert info.value.est_cost == 9.0
        assert info.value.max_cost == 1.0

    @pytest.mark.parametrize(
        "code,exc",
        [
            (ERR_DEADLINE, DeadlineError),
            (ERR_PARSE, ParseError),
            (ERR_EVALUATION, EvaluationError),
        ],
    )
    def test_typed_codes(self, code, exc):
        with pytest.raises(exc, match=code):
            raise_for_error({"code": code, "message": "boom"})

    def test_unknown_code_falls_back_to_service_error(self):
        with pytest.raises(ServiceError):
            raise_for_error({"code": "made-up", "message": "?"})


class TestRows:
    def test_wire_form_is_sorted_lists(self):
        answers = frozenset({("b", "a"), ("a", "b")})
        assert rows_to_wire(answers) == [["a", "b"], ["b", "a"]]

    def test_round_trip(self):
        answers = frozenset({("ab",), ("",), ("b",)})
        wired = rows_to_wire(answers)
        assert frozenset(rows_from_wire(wired)) == answers
        assert wired == sorted(wired)
