"""The admission controller: pricing, ceilings and queue caps."""

import pytest

from repro.core.alphabet import AB
from repro.core.parser import parse_formula
from repro.core.query import Query
from repro.engine import QueryEngine
from repro.errors import AdmissionError
from repro.ir.cost import GENERATION_CEILING
from repro.service import (
    REASON_COST,
    REASON_QUEUE,
    AdmissionController,
)


def make_query(text, head=("x",)):
    return Query(tuple(head), parse_formula(text), AB)


@pytest.fixture()
def session():
    return QueryEngine()


class TestConfiguration:
    def test_nonpositive_cost_ceiling_rejected(self):
        with pytest.raises(ValueError):
            AdmissionController(max_cost=0)

    def test_negative_queue_cap_rejected(self):
        with pytest.raises(ValueError):
            AdmissionController(max_queue=-1)

    def test_admitted_sentinel(self):
        assert AdmissionController.ADMITTED.admitted
        AdmissionController.ADMITTED.raise_if_rejected()


class TestCostAxis:
    def test_no_ceiling_admits_everything(self):
        controller = AdmissionController()
        assert controller.assess_cost(1e30).admitted

    def test_unpriceable_estimates_are_admitted(self):
        controller = AdmissionController(max_cost=1.0)
        decision = controller.assess_cost(None)
        assert decision.admitted
        assert decision.est_cost is None

    def test_ceiling_rejects_with_reason_and_numbers(self):
        controller = AdmissionController(max_cost=10.0)
        decision = controller.assess_cost(11.0)
        assert not decision.admitted
        assert decision.reason == REASON_COST
        assert decision.est_cost == 11.0
        assert decision.max_cost == 10.0
        with pytest.raises(AdmissionError) as info:
            decision.raise_if_rejected()
        assert info.value.reason == REASON_COST

    def test_estimate_prices_relational_queries(self, session, db):
        controller = AdmissionController()
        estimate = controller.estimate(
            session, make_query("R2(x)"), db, length=3
        )
        assert estimate is not None
        assert 0 < estimate <= GENERATION_CEILING

    def test_estimate_is_none_without_any_bound(self, session, db):
        # Negated atoms defeat the certified-limit analysis, and no
        # explicit length is given: unpriceable, admitted, and left to
        # fail (or not) inside evaluation.
        controller = AdmissionController(max_cost=1e-3)
        query = make_query("!R2(x)")
        assert controller.estimate(session, query, db) is None
        assert controller.assess(session, query, db).admitted

    def test_repeated_pricing_hits_the_plan_cache(self, session, db):
        controller = AdmissionController()
        query = make_query("R2(x)")
        first = controller.estimate(session, query, db, length=3)
        second = controller.estimate(session, query, db, length=3)
        assert first == second
        assert session.stats.caches["ir"].hits >= 1


class TestQueueAxis:
    def test_unbounded_queue(self):
        controller = AdmissionController()
        assert controller.assess_queue(10_000).admitted

    def test_cap_rejects_at_capacity(self):
        controller = AdmissionController(max_queue=2)
        assert controller.assess_queue(1).admitted
        decision = controller.assess_queue(2)
        assert not decision.admitted
        assert decision.reason == REASON_QUEUE
