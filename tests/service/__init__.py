"""Tests for repro.service: protocol, daemon, admission, equivalence."""
