"""Shared fixtures: a served database, clients, and a slow engine."""

import time

import pytest

from repro.core.alphabet import AB
from repro.core.database import Database
from repro.engine import (
    available_engines,
    register_engine,
    unregister_engine,
)
from repro.service import ServiceClient, serve_in_thread


class SleepyEngine:
    """An engine that sleeps before answering — deterministic slowness.

    Registered process-globally (the server thread resolves engines
    through the same registry), so deadline and queue tests do not
    depend on a machine-speed-sensitive workload being slow enough.
    """

    name = "sleepy"
    #: Seconds each evaluation sleeps; tests may tune this.
    delay = 0.5

    def evaluate(self, query, db, session, *, length=None, domain=None):
        time.sleep(self.delay)
        return frozenset()


@pytest.fixture()
def sleepy_engine():
    """The registered slow engine's name (cleaned up afterwards)."""
    if "sleepy" not in available_engines():
        register_engine(SleepyEngine())
    yield "sleepy"
    unregister_engine("sleepy")


@pytest.fixture()
def db():
    """The small two-relation database every service test serves."""
    return Database(
        AB,
        {
            "R1": [("a", "ab"), ("b", "ba")],
            "R2": [("a",), ("ab",), ("b",)],
        },
    )


@pytest.fixture()
def server(db):
    """A running daemon plus one connected client."""
    handle = serve_in_thread(db)
    client = ServiceClient(*handle.address)
    yield handle, client
    client.close()
    handle.stop()
