"""Failure containment: every protocol abuse gets one typed error.

The design rule under test: malformed JSON, oversized frames,
mid-request disconnects, expired deadlines and rejected plans each
produce a machine-readable error response — and the accept loop keeps
serving afterwards.  Every test ends by proving the server still
answers a healthy request.
"""

import asyncio
import json
import socket
import threading

import pytest

from repro.errors import (
    AdmissionError,
    DeadlineError,
    EvaluationError,
    ParseError,
    ServiceError,
    ServiceProtocolError,
)
from repro.service import (
    QueryService,
    ServiceClient,
    serve_in_thread,
)
from repro.service.protocol import (
    ERR_DRAINING,
    ERR_FRAME_TOO_LARGE,
    ERR_MALFORMED,
    PROTOCOL_SCHEMA,
)


def raw_exchange(address, payload_bytes, count=1):
    """Send raw bytes, read ``count`` response lines, close."""
    with socket.create_connection(address, timeout=5.0) as sock:
        sock.sendall(payload_bytes)
        reader = sock.makefile("rb")
        return [
            json.loads(reader.readline().decode("utf-8"))
            for _ in range(count)
        ]


def assert_alive(client):
    """The server must still answer after whatever the test did."""
    assert client.health()["status"] == "ok"
    assert client.query("R2(x)", ["x"], length=3) == [
        ("a",), ("ab",), ("b",)
    ]


class TestHappyPath:
    def test_health_document(self, server):
        _, client = server
        doc = client.health()
        assert doc["schema"] == PROTOCOL_SCHEMA
        assert doc["status"] == "ok"
        assert doc["relations"] == ["R1", "R2"]
        assert doc["pool_size"] >= 1

    def test_query_result_metadata(self, server):
        _, client = server
        result = client.call(
            "query",
            {"formula": "R2(x)", "head": ["x"], "length": 3},
        )
        assert result["rows"] == [["a"], ["ab"], ["b"]]
        assert result["engine"] == "auto"
        assert result["elapsed"] >= 0
        assert result["est_cost"] is None or result["est_cost"] > 0

    def test_explain(self, server):
        _, client = server
        text = client.explain("R2(x)", ["x"], length=3)
        assert "R2" in text

    def test_batch_preserves_order(self, server):
        _, client = server
        results = client.batch(
            [("R1(x, y)", ["x", "y"]), ("R2(x)", ["x"])], length=3
        )
        assert results == [
            [("a", "ab"), ("b", "ba")],
            [("a",), ("ab",), ("b",)],
        ]

    def test_stats_counters_accumulate(self, server):
        _, client = server
        client.query("R2(x)", ["x"], length=3)
        stats = client.stats()
        assert stats["service"]["service.requests"] >= 2
        assert stats["service"]["service.completed"] >= 1
        assert stats["pool"]["served"] >= 1
        assert stats["session"]["schema"] == "repro.trace-report/3"

    def test_correlation_ids_echo_verbatim(self, server):
        handle, client = server
        responses = raw_exchange(
            handle.address,
            b'{"id": "alpha", "op": "health"}\n'
            b'{"id": 42, "op": "health"}\n',
            count=2,
        )
        assert [r["id"] for r in responses] == ["alpha", 42]


class TestProtocolAbuse:
    def test_malformed_json_gets_typed_error(self, server):
        handle, client = server
        (response,) = raw_exchange(handle.address, b"this is not json\n")
        assert response["ok"] is False
        assert response["error"]["code"] == ERR_MALFORMED
        assert_alive(client)

    def test_non_object_frame(self, server):
        handle, client = server
        (response,) = raw_exchange(handle.address, b"[1, 2, 3]\n")
        assert response["error"]["code"] == ERR_MALFORMED
        assert_alive(client)

    def test_unknown_op(self, server):
        handle, client = server
        (response,) = raw_exchange(
            handle.address, b'{"id": 1, "op": "telepathy"}\n'
        )
        assert response["error"]["code"] == ERR_MALFORMED
        assert "telepathy" in response["error"]["message"]
        assert_alive(client)

    def test_bad_param_shapes(self, server):
        _, client = server
        with pytest.raises(ServiceProtocolError):
            client.call("query", {"formula": 7, "head": ["x"]})
        with pytest.raises(ServiceProtocolError):
            client.call("query", {"formula": "R2(x)", "head": "x"})
        with pytest.raises(ServiceProtocolError):
            client.call(
                "query",
                {"formula": "R2(x)", "head": ["x"], "length": -2},
            )
        assert_alive(client)

    def test_unparsable_formula(self, server):
        _, client = server
        with pytest.raises(ParseError):
            client.query("R2(x", ["x"], length=3)
        assert_alive(client)

    def test_head_formula_mismatch(self, server):
        _, client = server
        with pytest.raises(ParseError):
            client.query("R2(x)", ["zzz"], length=3)
        assert_alive(client)

    def test_evaluation_error_is_typed(self, server):
        _, client = server
        # Unpriceable and uncertifiable: admitted, then fails inside
        # evaluation with a typed error, not a dead connection.
        with pytest.raises(EvaluationError):
            client.query("!R2(x)", ["x"])
        assert_alive(client)


class TestFrameLimits:
    @pytest.fixture()
    def small_frame_server(self, db):
        handle = serve_in_thread(db, max_frame_bytes=512)
        client = ServiceClient(
            *handle.address, max_frame_bytes=512
        )
        yield handle, client
        client.close()
        handle.stop()

    def test_oversized_request_line_degrades_gracefully(
        self, small_frame_server
    ):
        handle, client = small_frame_server
        blob = b'{"op": "health", "pad": "' + b"x" * 2048 + b'"}\n'
        (response,) = raw_exchange(handle.address, blob)
        assert response["error"]["code"] == ERR_FRAME_TOO_LARGE
        assert response["error"]["limit"] == 512
        assert_alive(client)

    def test_frames_after_an_oversized_line_still_parse(
        self, small_frame_server
    ):
        handle, client = small_frame_server
        blob = (
            b'{"op": "health", "pad": "' + b"x" * 2048 + b'"}\n'
            b'{"id": 2, "op": "health"}\n'
        )
        first, second = raw_exchange(handle.address, blob, count=2)
        assert first["error"]["code"] == ERR_FRAME_TOO_LARGE
        assert second["ok"] is True
        assert second["id"] == 2

    def test_oversized_response_degrades_into_typed_error(self, db):
        # A 60-row relation: the request frame is tiny, the answer
        # cannot fit a 256-byte frame.
        from itertools import product

        from repro.core.alphabet import AB
        from repro.core.database import Database

        strings = [
            "".join(parts)
            for k in range(4)
            for parts in product("ab", repeat=k)
        ]
        pairs = list(product(strings, strings))[:60]
        wide = Database(AB, {"R2": [("a",)], "R3": pairs})
        handle = serve_in_thread(wide, max_frame_bytes=256)
        try:
            with ServiceClient(
                *handle.address, max_frame_bytes=256
            ) as client:
                with pytest.raises(
                    ServiceProtocolError, match=ERR_FRAME_TOO_LARGE
                ):
                    client.query("R3(x, y)", ["x", "y"], length=3)
                # the connection survived the degradation
                assert client.query("R2(x)", ["x"], length=1) == [("a",)]
        finally:
            handle.stop()


class TestDisconnects:
    def test_partial_line_then_disconnect(self, server):
        handle, client = server
        with socket.create_connection(handle.address, timeout=5.0) as sock:
            sock.sendall(b'{"id": 1, "op": "que')  # no newline, vanish
        assert_alive(client)

    def test_disconnect_without_reading_response(self, server):
        handle, client = server
        with socket.create_connection(handle.address, timeout=5.0) as sock:
            sock.sendall(
                b'{"id": 1, "op": "query", "params": '
                b'{"formula": "R2(x)", "head": ["x"], "length": 3}}\n'
            )
            # close immediately; the server writes into the void
        assert_alive(client)

    def test_abrupt_reset_mid_request(self, server):
        handle, client = server
        sock = socket.create_connection(handle.address, timeout=5.0)
        sock.sendall(b'{"id": 1, "op": "health"}\n')
        # RST instead of FIN
        sock.setsockopt(
            socket.SOL_SOCKET,
            socket.SO_LINGER,
            b"\x01\x00\x00\x00\x00\x00\x00\x00",
        )
        sock.close()
        assert_alive(client)


class TestDeadlines:
    @pytest.fixture()
    def slow_server(self, db, sleepy_engine):
        handle = serve_in_thread(db, pool_size=1, max_queue=1)
        client = ServiceClient(*handle.address)
        yield handle, client
        client.close()
        handle.stop()

    def test_deadline_expires_during_evaluation(
        self, slow_server, sleepy_engine
    ):
        _, client = slow_server
        with pytest.raises(DeadlineError, match="during evaluation"):
            client.query(
                "R2(x)", ["x"], length=3,
                engine=sleepy_engine, deadline=0.1,
            )
        assert_alive(client)

    def test_deadline_expires_waiting_for_a_slot(
        self, slow_server, sleepy_engine
    ):
        handle, client = slow_server

        def occupy():
            with ServiceClient(*handle.address) as other:
                other.query(
                    "R2(x)", ["x"], length=3, engine=sleepy_engine
                )

        hog = threading.Thread(target=occupy)
        hog.start()
        try:
            _wait_for_busy(handle.service)
            with pytest.raises(DeadlineError, match="pool slot"):
                client.query(
                    "R2(x)", ["x"], length=3,
                    engine=sleepy_engine, deadline=0.1,
                )
        finally:
            hog.join()
        assert_alive(client)

    def test_queue_full_rejection(self, slow_server, sleepy_engine):
        handle, client = slow_server
        hogs = []

        def occupy():
            with ServiceClient(*handle.address) as other:
                try:
                    other.query(
                        "R2(x)", ["x"], length=3, engine=sleepy_engine
                    )
                except (AdmissionError, ServiceError):
                    pass

        # Fill the single slot and the single queue seat.
        for _ in range(2):
            hog = threading.Thread(target=occupy)
            hog.start()
            hogs.append(hog)
        try:
            _wait_for_queue(handle.service)
            with pytest.raises(AdmissionError) as info:
                client.query(
                    "R2(x)", ["x"], length=3, engine=sleepy_engine
                )
            assert info.value.reason == "queue-full"
        finally:
            for hog in hogs:
                hog.join()
        assert_alive(client)


def _wait_for_busy(service, timeout=5.0):
    import time

    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if service.pool.busy:
            return
        time.sleep(0.01)
    raise AssertionError("pool never became busy")


def _wait_for_queue(service, timeout=5.0):
    import time

    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if service.pool.busy and service.pool.waiting >= 1:
            return
        time.sleep(0.01)
    raise AssertionError("queue never filled")


class TestAdmission:
    def test_cost_rejection_carries_numbers(self, db):
        handle = serve_in_thread(db, max_cost=0.5)
        try:
            with ServiceClient(*handle.address) as client:
                with pytest.raises(AdmissionError) as info:
                    client.query("R2(x)", ["x"], length=3)
                assert info.value.reason == "cost-exceeded"
                assert info.value.est_cost > 0.5
                assert info.value.max_cost == 0.5
                # health and stats stay reachable under rejection
                assert client.health()["status"] == "ok"
        finally:
            handle.stop()

    def test_batch_is_priced_as_a_whole(self, db):
        handle = serve_in_thread(db, max_cost=0.5)
        try:
            with ServiceClient(*handle.address) as client:
                with pytest.raises(AdmissionError):
                    client.batch(
                        [("R2(x)", ["x"]), ("R2(x)", ["x"])], length=3
                    )
        finally:
            handle.stop()


class TestDraining:
    def test_draining_rejects_new_work_but_answers_health(self, db):
        async def scenario():
            service = QueryService(db)
            await service.start()
            service._draining = True
            request_line = json.dumps({
                "id": 1, "op": "query",
                "params": {
                    "formula": "R2(x)", "head": ["x"], "length": 3
                },
            }).encode("utf-8")
            response = await service._handle_line(request_line)
            health = await service._handle_line(
                b'{"id": 2, "op": "health"}'
            )
            await service.drain()
            return response, health

        response, health = asyncio.run(scenario())
        assert response["error"]["code"] == ERR_DRAINING
        assert health["ok"] is True
        assert health["result"]["status"] == "draining"

    def test_drain_is_graceful_for_inflight_work(
        self, db, sleepy_engine
    ):
        # One slot, so the in-flight query is visible as pool.busy.
        handle = serve_in_thread(db, pool_size=1)
        client = ServiceClient(*handle.address)
        results = {}

        def slow_query():
            results["rows"] = client.query(
                "R2(x)", ["x"], length=3, engine=sleepy_engine
            )

        worker = threading.Thread(target=slow_query)
        worker.start()
        _wait_for_busy(handle.service)
        handle.stop()  # drain must wait for the in-flight evaluation
        worker.join(timeout=10.0)
        client.close()
        assert results["rows"] == []


class TestReports:
    def test_report_log_records_request_ids(self, db, tmp_path):
        log = tmp_path / "reports.jsonl"
        handle = serve_in_thread(db, report_log=str(log))
        try:
            with ServiceClient(*handle.address) as client:
                client.query("R2(x)", ["x"], length=3)
                client.explain("R2(x)", ["x"], length=3)
        finally:
            handle.stop()
        lines = [
            json.loads(line)
            for line in log.read_text().splitlines()
        ]
        assert [entry["op"] for entry in lines] == ["query", "explain"]
        assert all(
            entry["report"]["schema"] == "repro.trace-report/3"
            for entry in lines
        )
        # Correlation ids (the client counts from 1) ride along.
        assert [entry["request"] for entry in lines] == [1, 2]

    def test_on_report_callback_sees_cold_compile_spans(self, db):
        seen = []
        handle = serve_in_thread(
            db, on_report=lambda rid, op, report: seen.append(report)
        )
        try:
            with ServiceClient(*handle.address) as client:
                client.query("R2(x)", ["x"], length=3)
        finally:
            handle.stop()
        assert len(seen) == 1
        # The cold request's own tracer captured the ambient spans.
        assert len(seen[0].spans) >= 1
        names = {record.name for record in seen[0].spans}
        assert "service.request" in names
