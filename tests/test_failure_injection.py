"""Failure-injection tests: every error path raises the right error.

The library's contract is that deliberate failures surface as
:class:`ReproError` subclasses with actionable messages — never as
silent wrong answers or anonymous ``KeyError``/``ValueError`` leaks.
This module drives malformed inputs through each public surface.
"""

import pytest

from repro.core.alphabet import AB, DNA, LEFT_END, Alphabet
from repro.core.database import Database
from repro.core.query import Query
from repro.core.syntax import Exists, Not, atom, exists, left, lift, rel
from repro.errors import (
    AlphabetError,
    ArityError,
    AssignmentError,
    EvaluationError,
    LimitationError,
    ParseError,
    ReproError,
    SafetyError,
    TransitionError,
    UnboundedQueryError,
)


class TestErrorHierarchy:
    def test_all_errors_are_repro_errors(self):
        for error in (
            AlphabetError,
            ArityError,
            AssignmentError,
            EvaluationError,
            LimitationError,
            ParseError,
            SafetyError,
            TransitionError,
            UnboundedQueryError,
        ):
            assert issubclass(error, ReproError)
        assert issubclass(UnboundedQueryError, EvaluationError)


class TestDataBoundary:
    def test_foreign_characters_stopped_at_database(self):
        with pytest.raises(AlphabetError):
            Database(DNA, {"R": [("hello",)]})

    def test_foreign_characters_stopped_at_simulation(self):
        from repro.core import shorthands as sh
        from repro.fsa.compile import compile_string_formula
        from repro.fsa.simulate import accepts

        fsa = compile_string_formula(sh.equals("x", "y"), AB).fsa
        with pytest.raises(AlphabetError):
            accepts(fsa, ("xy", "xy"))

    def test_wrong_tuple_width_stopped_at_simulation(self):
        from repro.core import shorthands as sh
        from repro.fsa.compile import compile_string_formula
        from repro.fsa.simulate import accepts

        fsa = compile_string_formula(sh.equals("x", "y"), AB).fsa
        with pytest.raises(ArityError):
            accepts(fsa, ("ab",))

    def test_mismatched_alphabet_between_query_and_db(self):
        # The database boundary catches values outside ITS alphabet;
        # a query over a different alphabet then simply finds no
        # matching strings — no silent crash.
        db = Database(AB, {"R": [("ab",)]})
        q = Query(("x",), rel("R", "x"), Alphabet("cd"))
        assert q.evaluate(db, length=2) == frozenset()


class TestUnsafeQueries:
    def test_uncertified_query_refuses_auto_evaluation(self):
        from repro.core import shorthands as sh

        db = Database(AB, {"R": [("ab",)]})
        q = Query(
            ("y",),
            exists("x", rel("R", "x") & lift(sh.manifold("y", "x"))),
            AB,
        )
        with pytest.raises(SafetyError):
            q.evaluate(db)

    def test_unbounded_generation_raises_not_hangs(self):
        from repro.core.syntax import IsChar, SStar, WTrue, concat
        from repro.fsa.compile import compile_string_formula
        from repro.fsa.generate import accepted_tuples

        # [x]_l x='a' pins one character and accepts all extensions:
        # with an absurd cap, materializing them must fail loudly.
        phi = atom(left("x"), IsChar("x", "a"))
        fsa = compile_string_formula(phi, AB).fsa
        with pytest.raises(UnboundedQueryError):
            accepted_tuples(fsa, max_length=200)

    def test_crossing_state_explosion_capped(self):
        from repro.core import shorthands as sh
        from repro.fsa.compile import compile_string_formula
        from repro.safety.crossing import build_crossing_automaton

        fsa = compile_string_formula(sh.manifold("x", "y"), AB).fsa
        with pytest.raises(LimitationError):
            build_crossing_automaton(fsa, 1, {0}, {1}, max_states=1)


class TestStructuralValidation:
    def test_transition_off_tape_area(self):
        from repro.fsa.machine import Transition

        with pytest.raises(TransitionError):
            Transition("p", (LEFT_END,), "q", (-1,))

    def test_query_head_validation(self):
        with pytest.raises(EvaluationError):
            Query(("x", "y"), rel("R", "x"), AB)

    def test_quantifier_capture_detected(self):
        from repro.core.syntax import rename_free

        with pytest.raises(AssignmentError):
            rename_free(Exists("y", rel("R", "x", "y")), {"x": "y"})

    def test_parser_rejects_garbage(self):
        from repro.core.parser import parse_formula

        for garbage in ("", "R(", "exists : R(x)", "[x]l &", "R(x) &&"):
            with pytest.raises(ParseError):
                parse_formula(garbage)

    def test_planner_rejects_unsupported_shapes_loudly(self):
        db = Database(AB, {"R": [("a",)]})
        q = Query(("x",), Not(Exists("y", rel("R", "y"))) & rel("R", "x"), AB)
        with pytest.raises(EvaluationError):
            q.evaluate(db, length=2, engine="planner")


class TestCLIFailures:
    def test_unknown_relation_is_empty_not_crash(self, tmp_path):
        import json

        from repro.cli import main

        path = tmp_path / "db.json"
        path.write_text(json.dumps({"R": [["a"]]}))
        code = main(
            [
                "query",
                "--alphabet",
                "ab",
                "--db",
                str(path),
                "--head=x",
                "--length",
                "1",
                "Missing(x)",
            ]
        )
        assert code == 0  # empty answer, clean exit

    def test_malformed_formula_reports_error(self, tmp_path, capsys):
        import json

        from repro.cli import main

        path = tmp_path / "db.json"
        path.write_text(json.dumps({"R": [["a"]]}))
        code = main(
            [
                "query",
                "--alphabet",
                "ab",
                "--db",
                str(path),
                "--head=x",
                "R(x",
            ]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err
