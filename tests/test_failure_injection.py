"""Failure-injection tests: every error path raises the right error.

The library's contract is that deliberate failures surface as
:class:`ReproError` subclasses with actionable messages — never as
silent wrong answers or anonymous ``KeyError``/``ValueError`` leaks.
This module drives malformed inputs through each public surface.
"""

import pytest

from repro.core.alphabet import AB, DNA, LEFT_END, Alphabet
from repro.core.database import Database
from repro.core.query import Query
from repro.core.syntax import Exists, Not, atom, exists, left, lift, rel
from repro.errors import (
    AlphabetError,
    ArityError,
    AssignmentError,
    EvaluationError,
    LimitationError,
    ParseError,
    ReproError,
    SafetyError,
    TransitionError,
    UnboundedQueryError,
)


class TestErrorHierarchy:
    def test_all_errors_are_repro_errors(self):
        for error in (
            AlphabetError,
            ArityError,
            AssignmentError,
            EvaluationError,
            LimitationError,
            ParseError,
            SafetyError,
            TransitionError,
            UnboundedQueryError,
        ):
            assert issubclass(error, ReproError)
        assert issubclass(UnboundedQueryError, EvaluationError)


class TestDataBoundary:
    def test_foreign_characters_stopped_at_database(self):
        with pytest.raises(AlphabetError):
            Database(DNA, {"R": [("hello",)]})

    def test_foreign_characters_stopped_at_simulation(self):
        from repro.core import shorthands as sh
        from repro.fsa.compile import compile_string_formula
        from repro.fsa.simulate import accepts

        fsa = compile_string_formula(sh.equals("x", "y"), AB).fsa
        with pytest.raises(AlphabetError):
            accepts(fsa, ("xy", "xy"))

    def test_wrong_tuple_width_stopped_at_simulation(self):
        from repro.core import shorthands as sh
        from repro.fsa.compile import compile_string_formula
        from repro.fsa.simulate import accepts

        fsa = compile_string_formula(sh.equals("x", "y"), AB).fsa
        with pytest.raises(ArityError):
            accepts(fsa, ("ab",))

    def test_mismatched_alphabet_between_query_and_db(self):
        # The database boundary catches values outside ITS alphabet;
        # a query over a different alphabet then simply finds no
        # matching strings — no silent crash.
        db = Database(AB, {"R": [("ab",)]})
        q = Query(("x",), rel("R", "x"), Alphabet("cd"))
        assert q.evaluate(db, length=2) == frozenset()


class TestUnsafeQueries:
    def test_uncertified_query_refuses_auto_evaluation(self):
        from repro.core import shorthands as sh

        db = Database(AB, {"R": [("ab",)]})
        q = Query(
            ("y",),
            exists("x", rel("R", "x") & lift(sh.manifold("y", "x"))),
            AB,
        )
        with pytest.raises(SafetyError):
            q.evaluate(db)

    def test_unbounded_generation_raises_not_hangs(self):
        from repro.core.syntax import IsChar, SStar, WTrue, concat
        from repro.fsa.compile import compile_string_formula
        from repro.fsa.generate import accepted_tuples

        # [x]_l x='a' pins one character and accepts all extensions:
        # with an absurd cap, materializing them must fail loudly.
        phi = atom(left("x"), IsChar("x", "a"))
        fsa = compile_string_formula(phi, AB).fsa
        with pytest.raises(UnboundedQueryError):
            accepted_tuples(fsa, max_length=200)

    def test_crossing_state_explosion_capped(self):
        from repro.core import shorthands as sh
        from repro.fsa.compile import compile_string_formula
        from repro.safety.crossing import build_crossing_automaton

        fsa = compile_string_formula(sh.manifold("x", "y"), AB).fsa
        with pytest.raises(LimitationError):
            build_crossing_automaton(fsa, 1, {0}, {1}, max_states=1)


class TestStructuralValidation:
    def test_transition_off_tape_area(self):
        from repro.fsa.machine import Transition

        with pytest.raises(TransitionError):
            Transition("p", (LEFT_END,), "q", (-1,))

    def test_query_head_validation(self):
        with pytest.raises(EvaluationError):
            Query(("x", "y"), rel("R", "x"), AB)

    def test_quantifier_capture_detected(self):
        from repro.core.syntax import rename_free

        with pytest.raises(AssignmentError):
            rename_free(Exists("y", rel("R", "x", "y")), {"x": "y"})

    def test_parser_rejects_garbage(self):
        from repro.core.parser import parse_formula

        for garbage in ("", "R(", "exists : R(x)", "[x]l &", "R(x) &&"):
            with pytest.raises(ParseError):
                parse_formula(garbage)

    def test_planner_rejects_unsupported_shapes_loudly(self):
        db = Database(AB, {"R": [("a",)]})
        q = Query(("x",), Not(Exists("y", rel("R", "y"))) & rel("R", "x"), AB)
        with pytest.raises(EvaluationError):
            q.evaluate(db, length=2, engine="planner")


class TestParallelFaultInjection:
    """Chaos-injected shard failures: the executor must retry with
    re-split shards and still produce the exact sequential answer, or
    surface a typed :class:`ParallelExecutionError` when the retry
    budget is exhausted — never a wrong answer or a raw traceback.

    The query is evaluated with an explicit ``domain`` so the naive
    candidate space is sharded (planner-shaped evaluation would bind
    every variable relationally and leave nothing to inject into).
    Chaos policies key on shard generation: re-split children carry
    ``generation + 1`` and execute cleanly, which is exactly the
    transient-fault shape the retry loop is built for.
    """

    @staticmethod
    def _setup():
        from repro.core import shorthands as sh
        from repro.engine import QueryEngine
        from repro.workloads.generators import example_database

        db = example_database(AB, seed=3, size=4, max_length=3)
        query = Query(
            ("x", "y"),
            rel("R1", "x", "y") & lift(sh.prefix_of("x", "y")),
            AB,
        )
        session = QueryEngine()
        domain = session.domain_for(AB, 3)
        reference = session.evaluate(query, db, domain=domain, engine="naive")
        return session, query, db, domain, reference

    @staticmethod
    def _engine(**kwargs):
        from repro.engine import ParallelEngine

        return ParallelEngine(workers=2, min_parallel_items=1, **kwargs)

    def test_failing_shards_are_retried_to_the_correct_answer(self):
        from repro.parallel import ChaosPolicy

        session, query, db, domain, reference = self._setup()
        engine = self._engine(
            shards=3, chaos=ChaosPolicy(fail_generations=(0,))
        )
        answers = session.evaluate(query, db, domain=domain, engine=engine)
        assert answers == reference
        report = engine.last_report
        assert report.retries == 3 and report.resplits == 3
        assert report.failures >= 3
        # Every failed shard was re-split in two, so more shards
        # completed than were originally planned.
        assert report.shards_completed > report.shards_planned

    def test_hanging_shard_times_out_and_recovers(self):
        from repro.parallel import ChaosPolicy

        session, query, db, domain, reference = self._setup()
        engine = self._engine(
            shards=2,
            timeout=0.2,
            chaos=ChaosPolicy(
                hang_generations=(0,), only_indices=(0,), hang_seconds=5.0
            ),
        )
        answers = session.evaluate(query, db, domain=domain, engine=engine)
        assert answers == reference
        report = engine.last_report
        assert report.timeouts >= 1
        assert report.resplits >= 1

    def test_worker_crash_breaks_pool_but_not_the_answer(self):
        from repro.parallel import ChaosPolicy

        session, query, db, domain, reference = self._setup()
        engine = self._engine(
            shards=3,
            chaos=ChaosPolicy(crash_generations=(0,), only_indices=(0,)),
        )
        answers = session.evaluate(query, db, domain=domain, engine=engine)
        assert answers == reference
        assert engine.last_report.resplits >= 1

    def test_exhausted_retries_raise_typed_error(self):
        from repro.errors import ParallelExecutionError
        from repro.parallel import ChaosPolicy

        session, query, db, domain, _ = self._setup()
        engine = self._engine(
            shards=2,
            max_retries=1,
            chaos=ChaosPolicy(fail_generations=(0, 1, 2, 3)),
        )
        with pytest.raises(ParallelExecutionError):
            session.evaluate(query, db, domain=domain, engine=engine)

    def test_exhausted_timeouts_raise_shard_timeout_error(self):
        from repro.errors import ParallelExecutionError, ShardTimeoutError
        from repro.parallel import ChaosPolicy

        session, query, db, domain, _ = self._setup()
        engine = self._engine(
            shards=1,
            timeout=0.15,
            max_retries=0,
            chaos=ChaosPolicy(hang_generations=(0,), hang_seconds=5.0),
        )
        with pytest.raises(ShardTimeoutError):
            session.evaluate(query, db, domain=domain, engine=engine)
        assert issubclass(ShardTimeoutError, ParallelExecutionError)

    def test_sequential_chaos_stays_in_process(self):
        """With one worker the chaos hooks degrade gracefully: a crash
        injection must not take down the test process, and the typed
        error still surfaces."""
        from repro.engine import ParallelEngine
        from repro.errors import ParallelExecutionError
        from repro.parallel import ChaosPolicy

        session, query, db, domain, _ = self._setup()
        engine = ParallelEngine(
            workers=1,
            shards=2,
            min_parallel_items=1,
            max_retries=0,
            chaos=ChaosPolicy(crash_generations=(0,)),
        )
        with pytest.raises(ParallelExecutionError):
            session.evaluate(query, db, domain=domain, engine=engine)

    def test_parallel_error_hierarchy(self):
        from repro.errors import (
            ParallelExecutionError,
            ShardTimeoutError,
            WorkerCrashError,
        )

        assert issubclass(ParallelExecutionError, EvaluationError)
        assert issubclass(ShardTimeoutError, ParallelExecutionError)
        assert issubclass(WorkerCrashError, ParallelExecutionError)


class TestCLIFailures:
    def test_unknown_relation_is_empty_not_crash(self, tmp_path):
        import json

        from repro.cli import main

        path = tmp_path / "db.json"
        path.write_text(json.dumps({"R": [["a"]]}))
        code = main(
            [
                "query",
                "--alphabet",
                "ab",
                "--db",
                str(path),
                "--head=x",
                "--length",
                "1",
                "Missing(x)",
            ]
        )
        assert code == 0  # empty answer, clean exit

    def test_malformed_formula_reports_error(self, tmp_path, capsys):
        import json

        from repro.cli import main

        path = tmp_path / "db.json"
        path.write_text(json.dumps({"R": [["a"]]}))
        code = main(
            [
                "query",
                "--alphabet",
                "ab",
                "--db",
                str(path),
                "--head=x",
                "R(x",
            ]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err
