"""TraceReport tests: schema stability, stage accounting, renderings."""

import json

from repro.observability import (
    NULL_TRACER,
    STAGES,
    TRACE_REPORT_SCHEMA,
    TraceReport,
    Tracer,
)

TOP_LEVEL_KEYS = {
    "schema",
    "enabled",
    "stages",
    "counters",
    "gauges",
    "caches",
    "engines",
    "parallel",
    "rejects",
    "spans",
    "dropped_spans",
}


class TestSchemaStability:
    def test_disabled_tracer_still_keys_all_ten_stages(self):
        report = TraceReport.build(NULL_TRACER)
        data = report.to_dict()
        assert set(data) == TOP_LEVEL_KEYS
        assert data["schema"] == TRACE_REPORT_SCHEMA
        assert data["enabled"] is False
        assert tuple(data["stages"]) == STAGES
        for bucket in data["stages"].values():
            assert bucket == {"spans": 0, "seconds": 0.0}

    def test_enabled_tracer_keeps_the_same_shape(self):
        tracer = Tracer()
        with tracer.span("plan.decompose", stage="plan"):
            pass
        tracer.add("c", 2)
        tracer.gauge("g", 9)
        data = TraceReport.build(tracer).to_dict()
        assert set(data) == TOP_LEVEL_KEYS
        assert tuple(data["stages"]) == STAGES
        assert data["stages"]["plan"]["spans"] == 1
        assert data["counters"] == {"c": 2}
        assert data["gauges"] == {"g": 9}

    def test_json_round_trip(self):
        tracer = Tracer()
        with tracer.span("compile.build", stage="compile"):
            pass
        report = TraceReport.build(tracer)
        assert json.loads(report.to_json()) == json.loads(
            json.dumps(report.to_dict(), sort_keys=True)
        )

    def test_write_emits_parseable_json(self, tmp_path):
        path = tmp_path / "metrics.json"
        TraceReport.build(NULL_TRACER).write(str(path))
        data = json.loads(path.read_text(encoding="utf-8"))
        assert data["schema"] == TRACE_REPORT_SCHEMA


class TestStageAccounting:
    def test_nested_same_stage_span_counts_but_does_not_double_bill(self):
        tracer = Tracer()
        with tracer.span("execute.outer", stage="execute"):
            with tracer.span("execute.inner", stage="execute"):
                pass
        report = TraceReport.build(tracer)
        inner, outer = report.spans
        bucket = report.stages["execute"]
        assert bucket["spans"] == 2
        # seconds come from the stage-root span alone
        assert bucket["seconds"] == outer.duration
        assert bucket["seconds"] < outer.duration + inner.duration

    def test_different_stage_children_bill_their_own_stage(self):
        tracer = Tracer()
        with tracer.span("plan.decompose", stage="plan"):
            with tracer.span("compile.build", stage="compile"):
                pass
        report = TraceReport.build(tracer)
        assert report.stages["plan"]["spans"] == 1
        assert report.stages["compile"]["spans"] == 1
        assert report.stages["compile"]["seconds"] > 0.0

    def test_untagged_spans_do_not_touch_stage_buckets(self):
        tracer = Tracer()
        with tracer.span("executor.run"):
            pass
        report = TraceReport.build(tracer)
        assert all(
            bucket == {"spans": 0, "seconds": 0.0}
            for bucket in report.stages.values()
        )
        assert len(report.spans) == 1


class TestRenderings:
    def _report(self):
        tracer = Tracer()
        with tracer.span("executor.run", workers=2):
            with tracer.span("shard.plan", stage="shard", shards=3):
                pass
            with tracer.span("execute.shard", stage="execute"):
                pass
        tracer.add("executor.retries", 1)
        tracer.gauge("naive.candidate_space", 64)
        return TraceReport.build(tracer)

    def test_describe_lists_every_stage_and_metric(self):
        text = self._report().describe()
        for stage in STAGES:
            assert stage in text
        assert "counter executor.retries = 1" in text
        assert "gauge   naive.candidate_space = 64" in text

    def test_tree_indents_children_under_parents(self):
        lines = self._report().tree().splitlines()
        assert lines[0].startswith("executor.run")
        assert lines[1].startswith("  shard.plan [shard]")
        assert lines[2].startswith("  execute.shard [execute]")

    def test_tree_caps_rendered_spans(self):
        tracer = Tracer()
        for index in range(10):
            with tracer.span(f"s{index}"):
                pass
        text = TraceReport.build(tracer).tree(max_spans=4)
        assert "6 more span(s) not shown" in text

    def test_tree_without_spans_explains_itself(self):
        assert "tracing disabled" in TraceReport.build(NULL_TRACER).tree()

    def test_summary_reports_span_totals_when_enabled(self):
        text = self._report().summary()
        assert "trace spans=3 staged=2 dropped=0" in text

    def test_summary_is_silent_about_spans_when_disabled(self):
        assert "trace spans" not in TraceReport.build(NULL_TRACER).summary()
