"""Tracer unit tests: span nesting, counters, fold-back, ambience."""

import pytest

from repro.observability import (
    DEFAULT_MAX_SPANS,
    NULL_TRACER,
    STAGES,
    NullTracer,
    SpanRecord,
    Tracer,
    activate,
    current_tracer,
)


class TestStages:
    def test_canonical_order(self):
        assert STAGES == (
            "compile",
            "specialize",
            "normalize",
            "translate",
            "optimize",
            "plan",
            "shard",
            "execute",
            "fold",
            "delta",
        )


class TestSpanNesting:
    def test_records_appear_in_completion_order(self):
        tracer = Tracer()
        with tracer.span("outer", stage="plan"):
            with tracer.span("inner", stage="execute"):
                pass
        names = [record.name for record in tracer.records()]
        assert names == ["inner", "outer"]

    def test_child_records_parent_id(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.records()
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id

    def test_siblings_share_a_parent(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("first"):
                pass
            with tracer.span("second"):
                pass
        first, second, outer = tracer.records()
        assert first.parent_id == outer.span_id
        assert second.parent_id == outer.span_id
        assert first.span_id != second.span_id

    def test_start_offsets_are_monotonic_among_siblings(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        first, second = tracer.records()
        assert 0.0 <= first.start <= second.start
        assert first.duration >= 0.0

    def test_attributes_round_trip_and_set(self):
        tracer = Tracer()
        with tracer.span("op", stage="execute", items=3) as span:
            span.set(answers=7)
        (record,) = tracer.records()
        assert dict(record.attributes) == {"items": 3, "answers": 7}
        assert record.stage == "execute"

    def test_exception_records_error_attribute_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("no")
        (record,) = tracer.records()
        assert dict(record.attributes)["error"] == "ValueError"
        # the stack unwound: the next span is a root again
        with tracer.span("after"):
            pass
        assert tracer.records()[-1].parent_id is None

    def test_max_spans_drops_and_counts(self):
        tracer = Tracer(max_spans=2)
        for index in range(5):
            with tracer.span(f"s{index}"):
                pass
        assert len(tracer.records()) == 2
        assert tracer.dropped_spans == 3

    def test_default_retention_cap(self):
        assert Tracer().max_spans == DEFAULT_MAX_SPANS


class TestCountersAndGauges:
    def test_counters_accumulate(self):
        tracer = Tracer()
        tracer.add("hits")
        tracer.add("hits", 4)
        assert tracer.counters["hits"] == 5

    def test_gauges_last_write_wins(self):
        tracer = Tracer()
        tracer.gauge("space", 10)
        tracer.gauge("space", 3)
        assert tracer.gauges["space"] == 3


class TestAbsorb:
    def _worker_export(self):
        worker = Tracer()
        with worker.span("execute.shard", stage="execute"):
            with worker.span("simulate.run", stage="execute"):
                pass
        worker.add("simulate.runs", 2)
        worker.gauge("depth", 4)
        return worker.export()

    def test_absorbed_roots_reparent_under_current_span(self):
        records, counters, gauges = self._worker_export()
        parent = Tracer()
        with parent.span("executor.run") as _:
            parent.absorb(records, counters, gauges, worker=1234)
        by_name = {record.name: record for record in parent.records()}
        run = by_name["executor.run"]
        shard = by_name["execute.shard"]
        inner = by_name["simulate.run"]
        assert shard.parent_id == run.span_id
        assert inner.parent_id == shard.span_id

    def test_absorbed_ids_do_not_collide(self):
        records, counters, gauges = self._worker_export()
        parent = Tracer()
        with parent.span("local"):
            pass
        parent.absorb(records, counters, gauges)
        ids = [record.span_id for record in parent.records()]
        assert len(ids) == len(set(ids))

    def test_absorbed_records_are_worker_tagged(self):
        records, counters, gauges = self._worker_export()
        parent = Tracer()
        parent.absorb(records, counters, gauges, worker=77)
        assert {record.worker for record in parent.records()} == {77}

    def test_absorbed_counters_and_gauges_merge(self):
        records, counters, gauges = self._worker_export()
        parent = Tracer()
        parent.add("simulate.runs", 1)
        parent.absorb(records, counters, gauges, worker=77)
        assert parent.counters["simulate.runs"] == 3
        assert parent.gauges["depth"] == 4


class TestAmbientTracer:
    def test_defaults_to_null_tracer(self):
        assert current_tracer() is NULL_TRACER

    def test_activate_scopes_and_restores(self):
        tracer = Tracer()
        with activate(tracer) as active:
            assert active is tracer
            assert current_tracer() is tracer
        assert current_tracer() is NULL_TRACER

    def test_activation_nests(self):
        outer, inner = Tracer(), Tracer()
        with activate(outer):
            with activate(inner):
                assert current_tracer() is inner
            assert current_tracer() is outer


class TestNullTracer:
    def test_is_disabled_and_inert(self):
        tracer = NullTracer()
        assert tracer.enabled is False
        with tracer.span("anything", stage="execute", x=1) as span:
            span.set(y=2)
        tracer.add("c", 3)
        tracer.gauge("g", 4)
        tracer.flush()
        assert tracer.records() == ()
        assert tracer.export() == ((), {}, {})

    def test_absorb_discards(self):
        record = SpanRecord(
            span_id=1, parent_id=None, name="n", stage=None,
            start=0.0, duration=0.0,
        )
        NULL_TRACER.absorb([record], {"c": 1}, {"g": 2}, worker=5)
        assert NULL_TRACER.records() == ()


class TestSpanRecordSerialization:
    def test_dict_round_trip(self):
        record = SpanRecord(
            span_id=3,
            parent_id=1,
            name="execute.shard",
            stage="execute",
            start=0.5,
            duration=0.25,
            attributes=(("items", 8), ("kind", "naive")),
            worker=4242,
        )
        assert SpanRecord.from_dict(record.to_dict()) == record

    def test_worker_omitted_when_unset(self):
        record = SpanRecord(
            span_id=1, parent_id=None, name="n", stage=None,
            start=0.0, duration=0.0,
        )
        data = record.to_dict()
        assert "worker" not in data
        assert SpanRecord.from_dict(data).worker is None
