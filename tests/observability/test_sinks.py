"""Sink tests: ring buffer retention, JSON-lines round-trip, summary."""

import io

import pytest

from repro.observability import (
    JsonLinesSink,
    RingBufferSink,
    StderrSummarySink,
    Tracer,
)


def _traced(sink):
    tracer = Tracer(sinks=[sink])
    with tracer.span("plan.decompose", stage="plan"):
        with tracer.span("compile.build", stage="compile", tapes=2):
            pass
    with tracer.span("untagged"):
        pass
    tracer.flush()
    return tracer


class TestRingBufferSink:
    def test_retains_in_emission_order(self):
        sink = RingBufferSink(capacity=8)
        _traced(sink)
        assert [record.name for record in sink.records()] == [
            "compile.build",
            "plan.decompose",
            "untagged",
        ]

    def test_evicts_oldest_when_full(self):
        sink = RingBufferSink(capacity=2)
        _traced(sink)
        assert len(sink) == 2
        assert [record.name for record in sink.records()] == [
            "plan.decompose",
            "untagged",
        ]

    def test_clear(self):
        sink = RingBufferSink(capacity=4)
        _traced(sink)
        sink.clear()
        assert len(sink) == 0

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            RingBufferSink(capacity=0)

    def test_sees_spans_dropped_from_tracer_retention(self):
        sink = RingBufferSink(capacity=16)
        tracer = Tracer(sinks=[sink], max_spans=1)
        for index in range(3):
            with tracer.span(f"s{index}"):
                pass
        assert len(tracer.records()) == 1
        assert len(sink) == 3


class TestJsonLinesSink:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        tracer = _traced(JsonLinesSink(str(path)))
        loaded = JsonLinesSink.read(str(path))
        assert tuple(loaded) == tracer.records()

    def test_appends_across_tracers(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        first = _traced(JsonLinesSink(str(path)))
        second = _traced(JsonLinesSink(str(path)))
        loaded = JsonLinesSink.read(str(path))
        assert tuple(loaded) == first.records() + second.records()

    def test_close_is_idempotent_and_lazy(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        sink = JsonLinesSink(str(path))
        sink.close()
        sink.close()
        assert not path.exists()


class TestStderrSummarySink:
    def test_summary_aggregates_per_stage(self):
        stream = io.StringIO()
        sink = StderrSummarySink(stream=stream)
        _traced(sink)
        text = sink.summary()
        assert "3 span(s)" in text
        assert "stage plan" in text
        assert "stage compile" in text
        assert "(untagged)" in text

    def test_close_prints_to_stream(self):
        stream = io.StringIO()
        sink = StderrSummarySink(stream=stream)
        _traced(sink)
        assert "trace summary" in stream.getvalue()
