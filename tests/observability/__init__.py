"""Tests for the unified observability layer (tracing + metrics)."""
