"""End-to-end tracing through the engine and the process pool.

Covers the acceptance-critical properties: a traced session fills all
ten canonical pipeline stages, worker-side spans and counters fold
back into the parent tracer across pool workers, and tracing never
changes query answers.
"""

import os

import pytest

from repro.core import shorthands as sh
from repro.core.alphabet import AB
from repro.core.query import Query
from repro.core.syntax import And, exists, lift, rel
from repro.delta import Delta
from repro.engine import ParallelEngine, QueryEngine
from repro.observability import STAGES, Tracer
from repro.workloads.generators import example_database


@pytest.fixture()
def db():
    return example_database(AB, seed=3, size=4, max_length=3)


def _prefix_query():
    return Query(
        ("x", "y"),
        And(rel("R1", "x", "y"), lift(sh.prefix_of("x", "y"))),
        AB,
    )


def _concat_query():
    return Query(
        ("x",),
        exists(
            ["y", "z"],
            And(
                And(rel("R2", "y"), rel("R2", "z")),
                lift(sh.concatenation("x", "y", "z")),
            ),
        ),
        AB,
    )


def _pooled_engine(workers=2):
    return ParallelEngine(workers=workers, shards=4, min_parallel_items=1)


class TestStageCoverage:
    def test_one_session_fills_all_ten_stages(self, db):
        session = QueryEngine(tracer=Tracer())
        session.evaluate(_concat_query(), db, engine=_pooled_engine())
        session.evaluate(_prefix_query(), db, engine="algebra", length=3)
        session.apply_delta(db, Delta.of(inserts={"R1": [("a", "b")]}))
        report = session.trace_report()
        empty = [
            stage
            for stage in STAGES
            if report.stages[stage]["spans"] < 1
        ]
        assert not empty, f"stages without spans: {empty}"
        assert report.enabled

    def test_metrics_document_covers_all_ten_stages(self, db, tmp_path):
        session = QueryEngine(tracer=Tracer())
        session.evaluate(_concat_query(), db, engine=_pooled_engine())
        session.evaluate(_prefix_query(), db, engine="algebra", length=3)
        session.apply_delta(db, Delta.of(inserts={"R1": [("a", "b")]}))
        path = tmp_path / "metrics.json"
        session.trace_report().write(str(path))
        import json

        data = json.loads(path.read_text(encoding="utf-8"))
        assert set(data["stages"]) == set(STAGES)
        for stage in STAGES:
            assert data["stages"][stage]["spans"] >= 1


class TestWorkerFoldBack:
    def test_pool_spans_come_back_worker_tagged(self, db):
        session = QueryEngine(tracer=Tracer())
        engine = _pooled_engine(workers=2)
        session.evaluate(_concat_query(), db, engine=engine)
        assert engine.last_report.mode == "parallel"
        workers = {
            record.worker
            for record in session.tracer.records()
            if record.worker is not None
        }
        assert workers, "no worker-tagged spans folded back"
        assert os.getpid() not in workers

    def test_absorbed_worker_spans_nest_under_the_run(self, db):
        session = QueryEngine(tracer=Tracer())
        session.evaluate(_concat_query(), db, engine=_pooled_engine())
        records = session.tracer.records()
        by_id = {record.span_id: record for record in records}
        worker_roots = [
            record
            for record in records
            if record.worker is not None
            and (record.parent_id is None
                 or by_id[record.parent_id].worker is None)
        ]
        assert worker_roots
        for record in worker_roots:
            assert record.parent_id is not None, (
                "worker root span was not re-parented under the run"
            )
            assert by_id[record.parent_id].name == "executor.run"

    def test_counters_aggregate_identically_across_pool_sizes(self, db):
        query = _concat_query()
        sequential = QueryEngine(tracer=Tracer())
        sequential.evaluate(query, db, engine=_pooled_engine(workers=1))
        pooled = QueryEngine(tracer=Tracer())
        pooled.evaluate(query, db, engine=_pooled_engine(workers=2))
        name = "generate.machine_runs"
        assert sequential.tracer.counters.get(name, 0) > 0
        assert (
            pooled.tracer.counters.get(name, 0)
            == sequential.tracer.counters[name]
        )


class TestTracingIsInert:
    def test_traced_and_untraced_answers_are_identical(self, db):
        # the naive engine needs an explicit truncation bound: the
        # certified limit of the concat query is too loose to enumerate
        for kwargs_factory in (
            lambda: {"engine": _pooled_engine(workers=2)},
            lambda: {"engine": "planner"},
            lambda: {"engine": "naive", "length": 3},
        ):
            untraced = QueryEngine().evaluate(
                _concat_query(), db, **kwargs_factory()
            )
            traced = QueryEngine(tracer=Tracer()).evaluate(
                _concat_query(), db, **kwargs_factory()
            )
            assert traced == untraced

    def test_traced_algebra_matches_untraced(self, db):
        untraced = QueryEngine().evaluate(
            _prefix_query(), db, engine="algebra", length=3
        )
        traced = QueryEngine(tracer=Tracer()).evaluate(
            _prefix_query(), db, engine="algebra", length=3
        )
        assert traced == untraced

    def test_untraced_session_reports_disabled_but_stable_schema(self, db):
        session = QueryEngine()
        session.evaluate(_prefix_query(), db, engine="planner")
        report = session.trace_report()
        assert report.enabled is False
        assert tuple(report.to_dict()["stages"]) == STAGES
        assert report.spans == []
