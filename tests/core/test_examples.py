"""The paper's twelve worked example queries (Section 2) vs oracles.

Every string predicate built in :mod:`repro.core.shorthands` is checked
exhaustively against its classical baseline from
:mod:`repro.workloads.oracles` on all strings up to a small length —
an executable form of the paper's claims about what each formula
defines.
"""

from itertools import product

import pytest

from repro.core import shorthands as sh
from repro.core.alphabet import AB, Alphabet
from repro.core.database import Database
from repro.core.semantics import check_string_formula, evaluate_naive
from repro.core.syntax import And, lift, rel
from repro.workloads import oracles

ABC = Alphabet("abc")
GCA = Alphabet("gca")


def strings(alphabet, max_len):
    return list(alphabet.strings(max_len))


class TestExample1Constant:
    def test_constant_matches_only_itself(self):
        phi = sh.constant("x", "ab")
        for u in strings(AB, 3):
            assert check_string_formula(phi, {"x": u}) == (u == "ab")

    def test_constant_empty_word(self):
        phi = sh.constant("x", "")
        for u in strings(AB, 2):
            assert check_string_formula(phi, {"x": u}) == (u == "")

    def test_query_form(self):
        """x | ∃y: R1(y,x) ∧ y = "ab"."""
        from repro.core.syntax import exists

        db = Database(AB, {"R1": [("ab", "ba"), ("ab", "b"), ("ba", "aa")]})
        phi = exists("y", And(rel("R1", "y", "x"), lift(sh.constant("y", "ab"))))
        answers = evaluate_naive(phi, ("x",), db, strings(AB, 2))
        assert answers == {("ba",), ("b",)}


class TestExample2Equality:
    @pytest.mark.parametrize("max_len", [3])
    def test_equals_oracle(self, max_len):
        phi = sh.equals("x", "y")
        for u, v in product(strings(AB, max_len), repeat=2):
            assert check_string_formula(phi, {"x": u, "y": v}) == oracles.equals(
                u, v
            )


class TestPrefixSuffix:
    def test_prefix_oracle(self):
        phi = sh.prefix_of("x", "y")
        for u, v in product(strings(AB, 3), repeat=2):
            assert check_string_formula(phi, {"x": u, "y": v}) == oracles.is_prefix(
                u, v
            )

    def test_proper_prefix_oracle(self):
        phi = sh.proper_prefix_of("x", "y")
        for u, v in product(strings(AB, 3), repeat=2):
            assert check_string_formula(
                phi, {"x": u, "y": v}
            ) == oracles.is_proper_prefix(u, v)

    def test_suffix_oracle(self):
        phi = sh.suffix_of("x", "y")
        for u, v in product(strings(AB, 3), repeat=2):
            assert check_string_formula(phi, {"x": u, "y": v}) == oracles.is_suffix(
                u, v
            )


class TestExample3Concatenation:
    def test_concatenation_oracle(self):
        phi = sh.concatenation("x", "y", "z")
        pool = strings(AB, 2)
        for u, v, w in product(pool, repeat=3):
            assert check_string_formula(
                phi, {"x": u, "y": v, "z": w}
            ) == oracles.is_concatenation(u, v, w)

    def test_concatenation_query(self):
        """Example 3: tuples of R2 that concatenate a tuple of R1."""
        from repro.core.syntax import exists

        db = Database(
            AB,
            {
                "R1": [("a", "b"), ("ab", "")],
                "R2": [("ab",), ("ba",), ("",)],
            },
        )
        phi = exists(
            ["y", "z"],
            And(
                And(rel("R1", "y", "z"), rel("R2", "x")),
                lift(sh.concatenation("x", "y", "z")),
            ),
        )
        answers = evaluate_naive(phi, ("x",), db, strings(AB, 2))
        assert answers == {("ab",)}


class TestExample4Manifold:
    def test_manifold_oracle(self):
        phi = sh.manifold("x", "y")
        for u in strings(AB, 4):
            for v in strings(AB, 2):
                assert check_string_formula(
                    phi, {"x": u, "y": v}
                ) == oracles.is_manifold(u, v), (u, v)

    def test_manifold_classic_cases(self):
        phi = sh.manifold("x", "y")
        assert check_string_formula(phi, {"x": "ababab", "y": "ab"})
        assert not check_string_formula(phi, {"x": "ababa", "y": "ab"})
        assert check_string_formula(phi, {"x": "", "y": ""})
        assert not check_string_formula(phi, {"x": "a", "y": ""})


class TestExample5Shuffle:
    def test_shuffle_oracle(self):
        phi = sh.shuffle("x", "y", "z")
        for u in strings(AB, 3):
            for v, w in product(strings(AB, 2), repeat=2):
                assert check_string_formula(
                    phi, {"x": u, "y": v, "z": w}
                ) == oracles.is_shuffle(u, v, w), (u, v, w)

    def test_shuffle_interleaves(self):
        phi = sh.shuffle("x", "y", "z")
        assert check_string_formula(phi, {"x": "abab", "y": "aa", "z": "bb"})
        assert check_string_formula(phi, {"x": "abab", "y": "ab", "z": "ab"})
        assert not check_string_formula(phi, {"x": "abab", "y": "bb", "z": "ba"})


class TestExample6Pattern:
    def test_gc_plus_a_star_oracle(self):
        phi = sh.gc_plus_a_star("y")
        for u in strings(GCA, 4):
            assert check_string_formula(
                phi, {"y": u}
            ) == oracles.matches_gc_plus_a_star(u), u


class TestExample7Occurrence:
    def test_occurs_in_oracle(self):
        phi = sh.occurs_in("x", "y")
        for u in strings(AB, 2):
            for v in strings(AB, 3):
                assert check_string_formula(
                    phi, {"x": u, "y": v}
                ) == oracles.occurs_in(u, v), (u, v)


class TestExample8EditDistance:
    @pytest.mark.parametrize("k", [0, 1, 2])
    def test_edit_distance_oracle(self, k):
        phi = sh.edit_distance_at_most("x", "y", k)
        for u, v in product(strings(AB, 2), repeat=2):
            assert check_string_formula(
                phi, {"x": u, "y": v}
            ) == oracles.edit_distance_at_most(u, v, k), (u, v, k)

    def test_edit_distance_three_longer(self):
        phi = sh.edit_distance_at_most("x", "y", 1)
        assert check_string_formula(phi, {"x": "abba", "y": "abba"})
        assert check_string_formula(phi, {"x": "abba", "y": "aba"})
        assert not check_string_formula(phi, {"x": "abba", "y": "bb"})

    def test_counter_variant_counts_edits(self):
        phi = sh.edit_distance_counter("x", "y", "z")
        # (u, v, a^k) accepted iff edit ops can be paid with exactly |z| a's
        assert check_string_formula(phi, {"x": "ab", "y": "ab", "z": ""})
        assert check_string_formula(phi, {"x": "ab", "y": "bb", "z": "a"})
        assert not check_string_formula(phi, {"x": "ab", "y": "bb", "z": ""})
        # counters must consist of the counter character
        assert not check_string_formula(phi, {"x": "ab", "y": "bb", "z": "b"})

    def test_counter_variant_accepts_any_sufficient_counter(self):
        # (u, v, a^k) is accepted iff edit_distance(u, v) <= k.  Once a
        # row is exhausted its transposes clamp to no-ops, so an edit
        # block can consume only the counter; the paper's side remark
        # "k <= |u| + |v|" holds only if such degenerate blocks are
        # excluded (see EXPERIMENTS.md, item Q8).
        phi = sh.edit_distance_counter("x", "y", "z")
        assert check_string_formula(phi, {"x": "ab", "y": "ab", "z": "aaaa"})
        assert check_string_formula(phi, {"x": "ab", "y": "ab", "z": "aaaaa"})

    def test_counter_variant_matches_exact_oracle(self):
        phi = sh.edit_distance_counter("x", "y", "z")
        for u, v in product(strings(AB, 2), repeat=2):
            for k in range(4):
                assert check_string_formula(
                    phi, {"x": u, "y": v, "z": "a" * k}
                ) == (oracles.edit_distance(u, v) <= k), (u, v, k)


class TestExample9AXBXA:
    def test_axbxa_oracle(self):
        from repro.core.semantics import satisfies

        db = Database(AB, {})
        dom = strings(AB, 2)
        phi = sh.is_axbxa("x", "y", "z")
        for u in strings(AB, 5):
            assert satisfies(phi, {"x": u}, db, dom) == oracles.is_axbxa(u), u


class TestExample10EqualCounts:
    def test_equal_as_bs_oracle(self):
        from repro.core.semantics import satisfies

        db = Database(AB, {})
        dom = strings(AB, 4)
        phi = sh.has_equal_as_bs("x", "y", "z")
        for u in strings(AB, 4):
            assert satisfies(phi, {"x": u}, db, dom) == oracles.has_equal_as_bs(
                u
            ), u


class TestExample11AnBnCn:
    def test_anbncn_oracle(self):
        from repro.core.semantics import satisfies

        abc = Alphabet("abc")
        db = Database(abc, {})
        dom = strings(abc, 2)
        phi = sh.is_anbncn("x", "y")
        for u in strings(abc, 6):
            assert satisfies(phi, {"x": u}, db, dom) == oracles.is_anbncn(u), u


class TestExample12CopyTranslation:
    def test_copy_translation_oracle(self):
        from repro.core.semantics import satisfies

        db = Database(AB, {})
        dom = strings(AB, 2)
        phi = sh.is_copy_translation("x", "y", "z")
        for u in strings(AB, 4):
            assert satisfies(phi, {"x": u}, db, dom) == oracles.is_copy_translation(
                u
            ), u


class TestTemporalModalities:
    def test_occurs_in_temporal_matches_example7(self):
        phi = sh.occurs_in_temporal("x", "y")
        for u in strings(AB, 2):
            for v in strings(AB, 3):
                assert check_string_formula(
                    phi, {"x": u, "y": v}
                ) == oracles.occurs_in(u, v), (u, v)

    def test_henceforth(self):
        from repro.core.syntax import IsChar

        phi = sh.henceforth_along(["x"], IsChar("x", "a"))
        assert check_string_formula(phi, {"x": "aaa"})
        assert check_string_formula(phi, {"x": ""})
        assert not check_string_formula(phi, {"x": "aba"})

    def test_eventually_and_next(self):
        from repro.core.syntax import IsChar

        phi = sh.eventually_along(["x"], IsChar("x", "b"))
        assert check_string_formula(phi, {"x": "aab"})
        assert not check_string_formula(phi, {"x": "aaa"})
        nxt = sh.next_along(["x"], IsChar("x", "a"))
        assert check_string_formula(nxt, {"x": "ab"})
        assert not check_string_formula(nxt, {"x": "ba"})

    def test_since_is_past_until(self):
        from repro.core.syntax import IsChar, not_empty
        from repro.core.semantics import Assignment, satisfies_string
        from repro.core.alignment import Alignment, Row

        # Walk to the end of "ab", then check "a was seen in the past".
        a = Alignment.from_rows({0: Row("ab", 2)})
        phi = sh.since_along(["x"], not_empty("x"), IsChar("x", "a"))
        assert satisfies_string(a, phi, Assignment({"x": 0}))

    def test_rewind_resets_rows(self):
        from repro.core.alignment import Alignment, Row
        from repro.core.semantics import Assignment, satisfying_alignments

        a = Alignment.from_rows({0: Row("ab", 3), 1: Row("ba", 3)})
        finals = satisfying_alignments(
            a, sh.rewind(["x", "y"]), Assignment({"x": 0, "y": 1})
        )
        assert finals == {Alignment.from_rows({0: Row("ab", 0), 1: Row("ba", 0)})}


class TestReversal:
    def test_reverse_oracle(self):
        phi = sh.reverse_of("x", "y")
        for u in strings(AB, 3):
            for v in strings(AB, 3):
                assert check_string_formula(
                    phi, {"x": u, "y": v}
                ) == oracles.is_reverse(u, v), (u, v)

    def test_reverse_is_right_restricted_and_safe(self):
        from repro.core.syntax import bidirectional_variables, is_right_restricted
        from repro.safety.limitation import formula_limitation

        phi = sh.reverse_of("x", "y")
        assert is_right_restricted(phi)
        assert bidirectional_variables(phi) == {"y"}
        # Reversal is safely generable in both directions — the
        # capability the paper says constant-limit safety notions lack.
        assert formula_limitation(phi, ["x"], ["y"], AB).limited
        assert formula_limitation(phi, ["y"], ["x"], AB).limited

    def test_reverse_generation(self):
        from repro.fsa.compile import compile_string_formula
        from repro.fsa.generate import accepted_tuples

        compiled = compile_string_formula(sh.reverse_of("x", "y"), AB)
        outputs = accepted_tuples(
            compiled.fsa, max_length=6, fixed={compiled.tape_of("y"): "abb"}
        )
        assert outputs == {("bba",)}
