"""Tests for the fixed-alphabet substrate."""

import pytest

from repro.core.alphabet import AB, BINARY, DNA, LEFT_END, RIGHT_END, Alphabet
from repro.errors import AlphabetError


class TestConstruction:
    def test_dna_preset_has_four_symbols(self):
        assert tuple(DNA) == ("a", "c", "g", "t")

    def test_requires_at_least_two_symbols(self):
        with pytest.raises(AlphabetError):
            Alphabet("a")

    def test_rejects_duplicates(self):
        with pytest.raises(AlphabetError):
            Alphabet("aba")

    def test_rejects_multicharacter_symbols(self):
        with pytest.raises(AlphabetError):
            Alphabet(["ab", "c"])

    def test_rejects_reserved_endmarkers(self):
        with pytest.raises(AlphabetError):
            Alphabet(["a", LEFT_END])
        with pytest.raises(AlphabetError):
            Alphabet(["a", RIGHT_END])

    def test_alphabets_are_hashable_values(self):
        assert Alphabet("ab") == AB
        assert hash(Alphabet("ab")) == hash(AB)
        assert Alphabet("ba") != AB  # order is part of identity


class TestMembership:
    def test_contains(self):
        assert "g" in DNA
        assert "x" not in DNA

    def test_index_roundtrip(self):
        for i, sym in enumerate(BINARY):
            assert BINARY.index(sym) == i

    def test_index_unknown_symbol_raises(self):
        with pytest.raises(AlphabetError):
            DNA.index("q")

    def test_validate_string_accepts_good(self):
        assert DNA.validate_string("gattaca") == "gattaca"

    def test_validate_string_rejects_bad(self):
        with pytest.raises(AlphabetError):
            DNA.validate_string("gatx")

    def test_validate_empty_string(self):
        assert DNA.validate_string("") == ""


class TestEnumeration:
    def test_strings_up_to_length_two(self):
        got = list(AB.strings(2))
        assert got == ["", "a", "b", "aa", "ab", "ba", "bb"]

    def test_strings_with_min_length(self):
        assert list(AB.strings(2, min_length=2)) == ["aa", "ab", "ba", "bb"]

    def test_strings_negative_length_is_empty(self):
        assert list(AB.strings(-1)) == []

    def test_count_strings_matches_enumeration(self):
        for bound in range(4):
            assert AB.count_strings(bound) == len(list(AB.strings(bound)))

    def test_count_strings_dna(self):
        assert DNA.count_strings(2) == 1 + 4 + 16

    def test_tape_symbols_include_endmarkers(self):
        tape = AB.tape_symbols()
        assert LEFT_END in tape and RIGHT_END in tape
        assert set("ab") <= set(tape)
