"""Tests for formula ASTs, classification and renaming."""

import pytest

from repro.core.syntax import (
    And,
    Exists,
    IsChar,
    IsEmpty,
    Lambda,
    Not,
    SameChar,
    SAtom,
    SConcat,
    SStar,
    StringAtom,
    SUnion,
    Transpose,
    WAnd,
    WNot,
    WTrue,
    all_empty,
    atom,
    atoms_of,
    bidirectional_variables,
    concat,
    eq_chain,
    evaluate_window,
    exists,
    f_or,
    forall,
    free_variables,
    implies,
    is_right_restricted,
    is_unidirectional,
    left,
    lift,
    not_empty,
    not_equal,
    rel,
    relation_names,
    rename_free,
    rename_string,
    right,
    string_atoms,
    string_variables,
    union,
    w_or,
    window_variables,
)
from repro.errors import AssignmentError


class TestWindowFormulae:
    def test_evaluate_atoms(self):
        chars = {"x": "a", "y": None, "z": "a"}
        assert evaluate_window(IsChar("x", "a"), chars)
        assert not evaluate_window(IsChar("x", "b"), chars)
        assert evaluate_window(IsEmpty("y"), chars)
        assert not evaluate_window(IsEmpty("x"), chars)
        assert evaluate_window(SameChar("x", "z"), chars)
        assert not evaluate_window(SameChar("x", "y"), chars)

    def test_undefined_windows_compare_equal(self):
        # Needed for the paper's idiom "x = y = ε" (Example 2).
        chars = {"x": None, "y": None}
        assert evaluate_window(SameChar("x", "y"), chars)

    def test_boolean_connectives(self):
        chars = {"x": "a", "y": "c"}
        phi = WAnd(IsChar("x", "a"), WNot(IsChar("y", "a")))
        assert evaluate_window(phi, chars)
        assert evaluate_window(w_or(IsChar("x", "q"), IsChar("y", "c")), chars)
        assert not evaluate_window(
            w_or(IsChar("x", "q"), IsChar("y", "q")), chars
        )

    def test_true_and_shorthands(self):
        chars = {"x": "a", "y": "b"}
        assert evaluate_window(WTrue(), chars)
        assert evaluate_window(not_equal("x", "y"), chars)
        assert evaluate_window(not_empty("x"), chars)

    def test_eq_chain(self):
        chars = {"x": "a", "y": "a", "z": "a"}
        assert evaluate_window(eq_chain("x", "y", "z"), chars)
        chars["z"] = "b"
        assert not evaluate_window(eq_chain("x", "y", "z"), chars)

    def test_all_empty(self):
        assert evaluate_window(all_empty("x", "y"), {"x": None, "y": None})
        assert not evaluate_window(all_empty("x", "y"), {"x": "a", "y": None})
        assert evaluate_window(all_empty(), {})

    def test_window_variables(self):
        phi = WAnd(SameChar("x", "y"), WNot(IsEmpty("z")))
        assert window_variables(phi) == {"x", "y", "z"}
        assert window_variables(WTrue()) == frozenset()

    def test_operator_sugar(self):
        phi = IsChar("x", "a") & ~IsEmpty("y")
        assert evaluate_window(phi, {"x": "a", "y": "b"})


class TestTransposes:
    def test_canonical_variable_order(self):
        assert Transpose("l", ("y", "x", "y")).variables == ("x", "y")
        assert left("b", "a") == left("a", "b")

    def test_direction_validation(self):
        with pytest.raises(ValueError):
            Transpose("up", ("x",))

    def test_empty_transpose_allowed(self):
        assert left().variables == ()

    def test_str(self):
        assert str(right("x", "z")) == "[x,z]r"


class TestStringFormulae:
    def test_concat_flattens_and_drops_lambda(self):
        a = atom(left("x"))
        c = concat(a, Lambda(), concat(a, a))
        assert isinstance(c, SConcat)
        assert len(c.parts) == 3

    def test_concat_empty_is_lambda(self):
        assert concat() == Lambda()
        assert concat(Lambda(), Lambda()) == Lambda()

    def test_union_flattens(self):
        a, b = atom(left("x")), atom(left("y"))
        u = union(a, union(b, a))
        assert isinstance(u, SUnion)
        assert len(u.parts) == 3

    def test_union_empty_rejected(self):
        with pytest.raises(ValueError):
            union()

    def test_plus_and_power_shorthands(self):
        a = atom(left("x"))
        assert a.plus() == concat(a, SStar(a))
        assert a.times(0) == Lambda()
        assert a.times(2) == concat(a, a)
        with pytest.raises(ValueError):
            a.times(-1)

    def test_operator_sugar(self):
        a, b = atom(left("x")), atom(left("y"))
        assert a * b == concat(a, b)
        assert a + b == union(a, b)
        assert a.star() == SStar(a)

    def test_string_variables_include_transpose_only_vars(self):
        phi = atom(left("x", "y"), IsChar("z", "a"))
        assert string_variables(phi) == {"x", "y", "z"}

    def test_bidirectional_classification(self):
        uni = concat(atom(left("x")), SStar(atom(left("x", "y"))))
        assert is_unidirectional(uni)
        assert bidirectional_variables(uni) == frozenset()
        bi = concat(uni, atom(right("y")))
        assert not is_unidirectional(bi)
        assert bidirectional_variables(bi) == {"y"}
        assert is_right_restricted(bi)
        two_bi = concat(bi, atom(right("x")))
        assert not is_right_restricted(two_bi)

    def test_atoms_of(self):
        a, b = atom(left("x")), atom(right("y"))
        assert atoms_of(concat(a, SStar(union(a, b)))) == (a, a, b)
        assert atoms_of(Lambda()) == ()


class TestCalculusFormulae:
    def test_free_variables(self):
        phi = And(rel("R", "x", "y"), lift(atom(left("z"))))
        assert free_variables(phi) == {"x", "y", "z"}
        assert free_variables(exists(["y", "z"], phi)) == {"x"}

    def test_exists_nests(self):
        phi = exists(["a", "b"], rel("R", "a", "b"))
        assert isinstance(phi, Exists) and phi.var == "a"
        assert isinstance(phi.inner, Exists) and phi.inner.var == "b"

    def test_exists_accepts_single_string(self):
        assert exists("x", rel("R", "x")) == Exists("x", rel("R", "x"))

    def test_forall_encoding(self):
        phi = forall("x", rel("R", "x"))
        assert phi == Not(Exists("x", Not(rel("R", "x"))))

    def test_or_and_implies_encodings(self):
        p, q = rel("P", "x"), rel("Q", "x")
        assert f_or(p, q) == Not(And(Not(p), Not(q)))
        assert implies(p, q) == f_or(Not(p), q)

    def test_relation_names_and_purity(self):
        phi = And(rel("R1", "x"), Not(rel("R2", "x", "y")))
        assert relation_names(phi) == {"R1", "R2"}
        assert relation_names(lift(atom(left("x")))) == frozenset()

    def test_string_atoms_collection(self):
        sf = atom(left("x"))
        phi = exists("y", And(rel("R", "x", "y"), lift(sf)))
        assert string_atoms(phi) == (sf,)


class TestRenaming:
    def test_rename_string_formula(self):
        phi = concat(atom(left("x", "y"), SameChar("x", "y")), atom(right("y")))
        renamed = rename_string(phi, {"y": "w"})
        assert string_variables(renamed) == {"x", "w"}
        assert bidirectional_variables(renamed) == {"w"}

    def test_rename_free_respects_binding(self):
        phi = Exists("y", And(rel("R", "x", "y"), rel("S", "y")))
        renamed = rename_free(phi, {"x": "u", "y": "v"})
        # The bound y must not be renamed.
        assert free_variables(renamed) == {"u"}

    def test_rename_capture_detected(self):
        phi = Exists("y", rel("R", "x", "y"))
        with pytest.raises(AssignmentError):
            rename_free(phi, {"x": "y"})

    def test_rename_relational_atom(self):
        assert rename_free(rel("R", "x", "y"), {"x": "a"}) == rel("R", "a", "y")
