"""Tests for string databases."""

import json

import pytest

from repro.core.alphabet import AB, DNA, Alphabet
from repro.core.database import Database, empty_database
from repro.errors import AlphabetError, ArityError


class TestConstruction:
    def test_basic(self):
        db = Database(AB, {"R": [("a", "b")]})
        assert db.arity("R") == 2
        assert db.relation("R") == {("a", "b")}

    def test_mixed_arity_rejected(self):
        with pytest.raises(ArityError):
            Database(AB, {"R": [("a",), ("a", "b")]})

    def test_alphabet_validated(self):
        with pytest.raises(AlphabetError):
            Database(AB, {"R": [("xyz",)]})

    def test_non_string_rejected(self):
        with pytest.raises(AlphabetError):
            Database(AB, {"R": [(3,)]})

    def test_unknown_relation_is_empty(self):
        db = empty_database(AB)
        assert db.relation("nothing") == frozenset()
        with pytest.raises(ArityError):
            db.arity("nothing")

    def test_lists_are_accepted_and_frozen(self):
        db = Database(AB, {"R": [["a", "b"]]})
        assert db.contains("R", ("a", "b"))


class TestObservation:
    def db(self):
        return Database(
            AB, {"R1": [("ab", "babb")], "R2": [("a",)], "R3": []}
        )

    def test_relation_names_sorted(self):
        assert self.db().relation_names == ("R1", "R2", "R3")

    def test_max_string_length_eq2(self):
        db = self.db()
        assert db.max_string_length() == 4
        assert db.max_string_length("R2") == 1
        assert db.max_string_length("R3") == 0

    def test_active_strings(self):
        assert self.db().active_strings("R1") == {"ab", "babb"}

    def test_with_relation_is_functional(self):
        db = self.db()
        updated = db.with_relation("R2", [("bb",)])
        assert db.relation("R2") == {("a",)}
        assert updated.relation("R2") == {("bb",)}

    def test_equality_and_hash(self):
        assert self.db() == self.db()
        assert hash(self.db()) == hash(self.db())
        assert self.db() != empty_database(AB)
        assert self.db() != empty_database(DNA)


class TestJsonInterchange:
    def db(self):
        return Database(
            AB, {"R1": [("ab", "babb"), ("", "a")], "R2": [("a",)]}
        )

    def test_round_trip_mapping(self):
        assert Database.from_json(self.db().to_json()) == self.db()

    def test_round_trip_file(self, tmp_path):
        path = tmp_path / "db.json"
        self.db().dump_json(path)
        assert Database.from_json(path) == self.db()
        # dump_json output is real, deterministic JSON.
        assert json.loads(path.read_text()) == self.db().to_json()

    def test_to_json_is_sorted(self):
        payload = self.db().to_json()
        assert payload["alphabet"] == "ab"
        assert list(payload["relations"]) == ["R1", "R2"]
        assert payload["relations"]["R1"] == [["", "a"], ["ab", "babb"]]

    def test_bare_form_requires_alphabet(self):
        bare = {"R2": [["a"]]}
        assert Database.from_json(bare, AB) == Database(AB, {"R2": [("a",)]})
        with pytest.raises(AlphabetError):
            Database.from_json(bare)

    def test_bare_form_file(self, tmp_path):
        path = tmp_path / "bare.json"
        path.write_text(json.dumps({"R2": [["a"], ["bb"]]}))
        db = Database.from_json(path, AB)
        assert db.relation("R2") == {("a",), ("bb",)}

    def test_embedded_alphabet_must_match(self):
        payload = self.db().to_json()
        assert Database.from_json(payload, AB) == self.db()
        with pytest.raises(AlphabetError):
            Database.from_json(payload, DNA)

    def test_embedded_alphabet_used_when_none_given(self):
        db = Database.from_json({"alphabet": "acgt", "relations": {}})
        assert db.alphabet == Alphabet("acgt")

    def test_strings_validated_against_alphabet(self):
        with pytest.raises(AlphabetError):
            Database.from_json({"R": [["xyz"]]}, AB)

    def test_malformed_rows_rejected(self):
        with pytest.raises(ArityError):
            Database.from_json({"R": "not-a-list"}, AB)
        with pytest.raises(ArityError):
            Database.from_json({"R": [["a"], ["a", "b"]]}, AB)

    def test_non_mapping_rejected(self):
        with pytest.raises(AlphabetError):
            Database.from_json(42)
