"""Tests for alignments and transposes (paper Section 2, Figures 1-2)."""

import pytest

from repro.core.alignment import Alignment, Row, initial_alignment_for
from repro.core.alphabet import DNA
from repro.errors import AssignmentError


def figure1_alignment() -> Alignment:
    """The alignment of the paper's Figure 1.

    Row 0 = abc with the window on 'a' (head 1), row 1 = abb with the
    window on 'b' (head 2), row 2 = cacd with the window on 'a'
    (head 2): A(2,-1)=c, A(2,0)=a, A(2,1)=c, A(2,2)=d.
    """
    return Alignment.from_rows(
        {0: Row("abc", 1), 1: Row("abb", 2), 2: Row("cacd", 2)}
    )


class TestRow:
    def test_window_char_inside(self):
        assert Row("abc", 2).window_char == "b"

    def test_window_char_at_ends_is_none(self):
        assert Row("abc", 0).window_char is None
        assert Row("abc", 4).window_char is None

    def test_head_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            Row("abc", 5)
        with pytest.raises(ValueError):
            Row("abc", -1)

    def test_empty_string_pins_head(self):
        assert Row("", 0).window_char is None
        with pytest.raises(ValueError):
            Row("", 1)

    def test_char_at_matches_paper_figure1(self):
        row = Row("cacd", 2)
        assert row.char_at(-1) == "c"
        assert row.char_at(0) == "a"
        assert row.char_at(1) == "c"
        assert row.char_at(2) == "d"
        assert row.char_at(3) is None
        assert row.char_at(-2) is None

    def test_columns_interval(self):
        assert list(Row("abc", 0).columns) == [1, 2, 3]
        assert list(Row("abc", 2).columns) == [-1, 0, 1]
        assert list(Row("", 0).columns) == []

    def test_slide_left_clamps_at_right_end(self):
        row = Row("ab", 2)
        row = row.slid_left()
        assert row.head == 3
        assert row.slid_left().head == 3  # clamped

    def test_slide_right_clamps_at_left_end(self):
        row = Row("ab", 1)
        row = row.slid_right()
        assert row.head == 0
        assert row.slid_right().head == 0  # clamped

    def test_empty_row_never_moves(self):
        row = Row("", 0)
        assert row.slid_left() == row
        assert row.slid_right() == row


class TestAlignment:
    def test_figure1_window_propositions(self):
        a = figure1_alignment()
        # "window of topmost equals a or window of middle differs from c"
        assert a.window_char(0) == "a" or a.window_char(1) != "c"
        # "window of middle and bottom are equal" is false
        assert a.window_char(1) != a.window_char(2)

    def test_sigma_extracts_row_strings(self):
        a = figure1_alignment()
        assert a.sigma(2) == "cacd"
        assert a.sigma(7) == ""  # unset rows behave as ε

    def test_initial_alignment_everything_undefined(self):
        a = Alignment.initial({0: "abc", 1: ""})
        assert a.is_initial()
        assert a.window_char(0) is None
        assert a.window_char(1) is None

    def test_transpose_left_shows_first_char(self):
        a = Alignment.initial({0: "abc"})
        assert a.transpose_left([0]).window_char(0) == "a"

    def test_transpose_only_moves_named_rows(self):
        a = Alignment.initial({0: "ab", 1: "cd"})
        moved = a.transpose_left([0])
        assert moved.window_char(0) == "a"
        assert moved.window_char(1) is None

    def test_figure2_right_transpose(self):
        # Bottom-right alignment of Figure 2: [3,5]_r style transpose
        # on rows 0 and 2 of Figure 1.
        a = figure1_alignment()
        moved = a.transpose_right([0, 2])
        assert moved.window_char(0) is None  # abc slid right, head 0
        assert moved.window_char(2) == "c"  # cacd head back to 1
        assert moved.window_char(1) == "b"  # untouched row

    def test_transpose_dispatch_by_tag(self):
        a = Alignment.initial({0: "ab"})
        assert a.transpose("l", [0]) == a.transpose_left([0])
        assert a.transpose("r", [0]) == a.transpose_right([0])
        with pytest.raises(ValueError):
            a.transpose("x", [0])

    def test_transposes_compose_and_clamp(self):
        a = Alignment.initial({0: "ab"})
        for _ in range(10):
            a = a.transpose_left([0])
        assert a.window_char(0) is None
        assert a.row(0).head == 3

    def test_alignment_equality_and_hash(self):
        a = Alignment.initial({0: "abc"})
        b = Alignment.initial({0: "abc", 1: ""})  # empty row unobservable
        assert a == b
        assert hash(a) == hash(b)

    def test_negative_rows_rejected(self):
        with pytest.raises(AssignmentError):
            Alignment.initial({-1: "a"})

    def test_with_row_resets_to_initial(self):
        a = figure1_alignment().with_row(0, "tt")
        assert a.row(0) == Row("tt", 0)

    def test_truncate(self):
        a = Alignment.initial({0: "acgt", 1: "ac"})
        cut = a.truncate(3)
        assert cut.sigma(0) == "acg"
        assert cut.sigma(1) == "ac"

    def test_initial_alignment_for_validates(self):
        from repro.errors import AlphabetError

        with pytest.raises(AlphabetError):
            initial_alignment_for(["xyz"], DNA)

    def test_render_contains_rows_and_window_marker(self):
        art = figure1_alignment().render()
        lines = art.splitlines()
        assert lines[0].endswith("|")
        assert "a b c" in art
        assert "c a c d" in art

    def test_render_empty(self):
        art = Alignment.initial({}).render()
        assert "|" in art
