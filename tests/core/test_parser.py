"""Tests for the concrete text syntax."""

import pytest

from repro.core import shorthands as sh
from repro.core.parser import (
    formula_to_text,
    parse_formula,
    parse_string_formula,
    parse_window,
    string_to_text,
    window_to_text,
)
from repro.core.semantics import check_string_formula
from repro.core.syntax import (
    And,
    Exists,
    IsChar,
    IsEmpty,
    Lambda,
    Not,
    RelAtom,
    SameChar,
    SStar,
    StringAtom,
    WTrue,
    atom,
    concat,
    left,
)
from repro.errors import ParseError


class TestWindowParsing:
    def test_atoms(self):
        assert parse_window("x = 'a'") == IsChar("x", "a")
        assert parse_window("x = eps") == IsEmpty("x")
        assert parse_window("x = y") == SameChar("x", "y")
        assert parse_window("true") == WTrue()

    def test_chains(self):
        chained = parse_window("x = y = eps")
        assert check_chain(chained, {"x": None, "y": None})
        assert not check_chain(chained, {"x": "a", "y": None})
        triple = parse_window("x = y = z = 'a'")
        assert check_chain(triple, {"x": "a", "y": "a", "z": "a"})
        assert not check_chain(triple, {"x": "a", "y": "a", "z": "b"})

    def test_connectives_and_precedence(self):
        phi = parse_window("x = 'a' & !y = 'b' | x = eps")
        # '&' binds tighter than '|'
        assert check_chain(phi, {"x": "a", "y": "a"})
        assert check_chain(phi, {"x": None, "y": "b"})
        assert not check_chain(phi, {"x": "a", "y": "b"})

    def test_errors(self):
        for bad in ["x =", "x = 'ab'", "= 'a'", "x ? y", "(x = 'a'"]:
            with pytest.raises(ParseError):
                parse_window(bad)


def check_chain(formula, chars):
    from repro.core.syntax import evaluate_window

    return evaluate_window(formula, chars)


class TestStringParsing:
    def test_atoms(self):
        assert parse_string_formula("[x]l") == atom(left("x"), WTrue())
        assert parse_string_formula("[x,y]l(x = y)") == atom(
            left("x", "y"), SameChar("x", "y")
        )
        assert parse_string_formula("[]l(x = eps)") == atom(
            left(), IsEmpty("x")
        )
        assert parse_string_formula("_") == Lambda()

    def test_equality_formula(self):
        text = "([x,y]l(x = y))* . [x,y]l(x = y = eps)"
        parsed = parse_string_formula(text)
        for u, v in [("ab", "ab"), ("ab", "ba"), ("", "")]:
            assert check_string_formula(parsed, {"x": u, "y": v}) == (
                u == v
            ), (u, v)

    def test_union_and_star(self):
        text = "([x]l(x = 'a') + [x]l(x = 'b') . [x]l(x = 'b'))* . [x]l(x = eps)"
        parsed = parse_string_formula(text)
        # '.' binds tighter than '+': a | bb, starred
        assert check_string_formula(parsed, {"x": "abba"})
        assert not check_string_formula(parsed, {"x": "ab"})

    def test_errors(self):
        for bad in ["[x]", "[x]q", "[x]l .", "[x]l +", "(", "[x]l)"]:
            with pytest.raises(ParseError):
                parse_string_formula(bad)


class TestCalculusParsing:
    def test_relational_atom(self):
        assert parse_formula("R1(x, y)") == RelAtom("R1", ("x", "y"))
        assert parse_formula("Nullary()") == RelAtom("Nullary", ())

    def test_embedded_string_formula(self):
        phi = parse_formula("R(x) & [x]l(x = 'a')")
        assert isinstance(phi, And)
        assert isinstance(phi.right, StringAtom)

    def test_braced_string_formula(self):
        phi = parse_formula("{_}")
        assert phi == StringAtom(Lambda())

    def test_quantifiers(self):
        phi = parse_formula("exists y, z: R(x, y) & S(z)")
        assert isinstance(phi, Exists) and phi.var == "y"
        universal = parse_formula("forall x: R(x)")
        assert isinstance(universal, Not)

    def test_negation_and_grouping(self):
        phi = parse_formula("!(R(x) | S(x))")
        assert isinstance(phi, Not)

    def test_full_example_query(self):
        text = (
            "exists y, z: R1(y, z) & R2(x) & "
            "([x,y]l(x = y))* . ([x,z]l(x = z))* . [x,y,z]l(x = y = z = eps)"
        )
        phi = parse_formula(text)
        from repro.core.semantics import satisfies
        from repro.core.alphabet import AB
        from repro.core.database import Database

        db = Database(AB, {"R1": [("a", "b")], "R2": [("ab",), ("ba",)]})
        domain = tuple(AB.strings(2))
        assert satisfies(phi, {"x": "ab"}, db, domain)
        assert not satisfies(phi, {"x": "ba"}, db, domain)


class TestRoundTrips:
    @pytest.mark.parametrize(
        "formula",
        [
            sh.equals("x", "y"),
            sh.concatenation("x", "y", "z"),
            sh.manifold("x", "y"),
            sh.shuffle("x", "y", "z"),
            sh.edit_distance_at_most("x", "y", 1),
            sh.anbncn_string_part("x", "y"),
        ],
        ids=["equals", "concat", "manifold", "shuffle", "edit", "anbncn"],
    )
    def test_string_formula_round_trip(self, formula):
        text = string_to_text(formula)
        reparsed = parse_string_formula(text)
        # Semantic round trip on small inputs.
        for u in ("", "a", "ab", "abab"):
            for v in ("", "ab"):
                env = {var: val for var, val in zip(("x", "y", "z"), (u, v, v))}
                from repro.core.syntax import string_variables

                env = {k: env.get(k, "") for k in string_variables(formula)}
                assert check_string_formula(reparsed, env) == (
                    check_string_formula(formula, env)
                ), (text, env)

    def test_calculus_round_trip(self):
        phi = Exists(
            "y", And(RelAtom("R", ("x", "y")), Not(StringAtom(sh.equals("x", "y"))))
        )
        reparsed = parse_formula(formula_to_text(phi))
        from repro.core.syntax import free_variables

        assert free_variables(reparsed) == {"x"}

    def test_window_round_trip(self):
        from repro.core.syntax import evaluate_window

        samples = [
            IsChar("x", "a") & ~IsEmpty("y"),
            SameChar("x", "y"),
            WTrue(),
        ]
        for formula in samples:
            reparsed = parse_window(window_to_text(formula))
            for chars in ({"x": "a", "y": "b"}, {"x": None, "y": None}):
                assert evaluate_window(reparsed, chars) == evaluate_window(
                    formula, chars
                )
