"""Tests for the direct model-checking semantics (truth definitions 1-13)."""

import pytest

from repro.core.alignment import Alignment, Row
from repro.core.alphabet import AB
from repro.core.database import Database
from repro.core.semantics import (
    Assignment,
    check_string_formula,
    evaluate_naive,
    satisfies,
    satisfies_string,
    satisfying_alignments,
)
from repro.core.syntax import (
    And,
    Exists,
    IsChar,
    IsEmpty,
    Lambda,
    Not,
    SameChar,
    SStar,
    WTrue,
    atom,
    concat,
    exists,
    forall,
    left,
    lift,
    not_empty,
    rel,
    right,
    union,
)
from repro.errors import AssignmentError


def theta_xyz() -> Assignment:
    return Assignment({"x": 0, "y": 1, "z": 2})


class TestAssignment:
    def test_injectivity_enforced(self):
        with pytest.raises(AssignmentError):
            Assignment({"x": 0, "y": 0})

    def test_lookup_and_membership(self):
        theta = theta_xyz()
        assert theta["y"] == 1
        assert "z" in theta and "w" not in theta
        with pytest.raises(AssignmentError):
            theta["w"]

    def test_extended_replaces(self):
        theta = theta_xyz().extended("x", 5)
        assert theta["x"] == 5
        assert theta["y"] == 1

    def test_extended_must_stay_injective(self):
        with pytest.raises(AssignmentError):
            theta_xyz().extended("x", 1)


class TestAtomicStringFormulae:
    """The worked examples around Figure 2 of the paper."""

    def figure1(self) -> Alignment:
        return Alignment.from_rows(
            {0: Row("abc", 1), 1: Row("abb", 2), 2: Row("cacd", 2)}
        )

    def test_paper_example_top_left(self):
        # A ⊨ [x]_l (x=c ∧ y=b), A ⊭ [x]_l (x=c) with the Figure 2
        # top-left alignment being our figure1 slid so that row 0 shows b.
        a = Alignment.from_rows(
            {0: Row("abc", 2), 1: Row("abb", 2), 2: Row("cacd", 2)}
        )
        theta = theta_xyz()
        phi_good = atom(left("x"), IsChar("x", "c") & IsChar("y", "b"))
        assert satisfies_string(a, phi_good, theta)
        # [x]_l (x=c) alone also holds here; the paper's failing case is
        # from its own A — build one where sliding x gives 'a' instead.
        a2 = Alignment.from_rows({0: Row("abc", 0), 1: Row("abb", 2)})
        assert not satisfies_string(
            a2, atom(left("x"), IsChar("x", "c")), theta
        )
        assert satisfies_string(a2, atom(left("x"), IsChar("x", "a")), theta)

    def test_transpose_applies_before_test(self):
        a = Alignment.initial({0: "ba"})
        theta = Assignment({"x": 0})
        assert satisfies_string(a, atom(left("x"), IsChar("x", "b")), theta)
        assert not satisfies_string(a, atom(left("x"), IsChar("x", "a")), theta)

    def test_lambda_vacuously_true(self):
        a = Alignment.initial({0: "ab"})
        assert satisfies_string(a, Lambda(), Assignment({"x": 0}))

    def test_unassigned_variable_raises(self):
        a = Alignment.initial({0: "ab"})
        with pytest.raises(AssignmentError):
            satisfies_string(a, atom(left("q")), Assignment({"x": 0}))


class TestRegexStructure:
    def test_union_selects_either_branch(self):
        theta = Assignment({"x": 0})
        phi = union(
            atom(left("x"), IsChar("x", "a")), atom(left("x"), IsChar("x", "b"))
        )
        assert satisfies_string(Alignment.initial({0: "a"}), phi, theta)
        assert satisfies_string(Alignment.initial({0: "b"}), phi, theta)

    def test_star_zero_and_many(self):
        theta = Assignment({"x": 0})
        phi = concat(
            SStar(atom(left("x"), IsChar("x", "a"))),
            atom(left("x"), IsEmpty("x")),
        )
        for word, expected in [("", True), ("a", True), ("aaaa", True), ("ab", False)]:
            assert (
                satisfies_string(Alignment.initial({0: word}), phi, theta)
                is expected
            )

    def test_paper_abab_star_example(self):
        # Fourth row abababa with the first a in the window: satisfies
        # ([u]_l u=b . [u]_l u=a)* but not ([u]_l u=a . [u]_l u=b)+.
        a = Alignment.from_rows({3: Row("abababa", 1)})
        theta = Assignment({"u": 3})
        ba = concat(atom(left("u"), IsChar("u", "b")), atom(left("u"), IsChar("u", "a")))
        ab = concat(atom(left("u"), IsChar("u", "a")), atom(left("u"), IsChar("u", "b")))
        assert satisfies_string(a, SStar(ba), theta)
        assert not satisfies_string(a, ab.plus(), theta)

    def test_infinite_star_terminates(self):
        # ([x]_l ⊤)* over a clamped head: finitely many alignments.
        theta = Assignment({"x": 0})
        phi = concat(SStar(atom(left("x"), WTrue())), atom(left("x"), IsChar("x", "q")))
        assert not satisfies_string(Alignment.initial({0: "ab"}), phi, theta)

    def test_bidirectional_ping_pong(self):
        theta = Assignment({"x": 0})
        # Slide to the end and come back, then re-read the first char.
        phi = concat(
            SStar(atom(left("x"), not_empty("x"))),
            atom(left("x"), IsEmpty("x")),
            SStar(atom(right("x"), not_empty("x"))),
            atom(right("x"), IsEmpty("x")),
            atom(left("x"), IsChar("x", "a")),
        )
        assert satisfies_string(Alignment.initial({0: "ab"}), phi, theta)
        assert not satisfies_string(Alignment.initial({0: "ba"}), phi, theta)

    def test_satisfying_alignments_returns_final_states(self):
        theta = Assignment({"x": 0})
        phi = atom(left("x"), WTrue())
        finals = satisfying_alignments(Alignment.initial({0: "ab"}), phi, theta)
        assert finals == {Alignment.from_rows({0: Row("ab", 1)})}

    def test_satisfying_alignments_empty_when_unsatisfied(self):
        theta = Assignment({"x": 0})
        phi = atom(left("x"), IsChar("x", "b"))
        assert (
            satisfying_alignments(Alignment.initial({0: "ab"}), phi, theta)
            == frozenset()
        )


class TestCalculusSemantics:
    def db(self) -> Database:
        return Database(
            AB,
            {
                "R1": [("ab", "ab"), ("ab", "ba"), ("b", "b")],
                "R2": [("a",), ("ab",)],
            },
        )

    def domain(self, l: int = 2) -> tuple[str, ...]:
        return tuple(AB.strings(l))

    def test_relational_atom(self):
        db = self.db()
        dom = self.domain()
        assert satisfies(rel("R1", "x", "y"), {"x": "ab", "y": "ba"}, db, dom)
        assert not satisfies(rel("R1", "x", "y"), {"x": "ba", "y": "ab"}, db, dom)

    def test_conjunction_and_negation(self):
        db, dom = self.db(), self.domain()
        phi = And(rel("R2", "x"), Not(rel("R1", "x", "x")))
        assert satisfies(phi, {"x": "a"}, db, dom)
        assert not satisfies(phi, {"x": "ab"}, db, dom)

    def test_exists_ranges_over_domain(self):
        db, dom = self.db(), self.domain()
        phi = exists("y", rel("R1", "x", "y"))
        assert satisfies(phi, {"x": "ab"}, db, dom)
        assert not satisfies(phi, {"x": "aa"}, db, dom)

    def test_forall_encoding_truncated(self):
        db, dom = self.db(), self.domain(1)
        # every string in the domain is in R2?  ("" is not)
        phi = forall("x", rel("R2", "x"))
        assert not satisfies(phi, {}, db, dom)

    def test_string_atom_checked_from_initial_alignment(self):
        from repro.core.shorthands import equals

        db, dom = self.db(), self.domain()
        phi = And(rel("R1", "x", "y"), lift(equals("x", "y")))
        assert satisfies(phi, {"x": "ab", "y": "ab"}, db, dom)
        assert not satisfies(phi, {"x": "ab", "y": "ba"}, db, dom)

    def test_evaluate_naive_example2(self):
        """Example 2: tuples of R1 whose components are equal."""
        from repro.core.shorthands import equals

        db = self.db()
        phi = And(rel("R1", "x", "y"), lift(equals("x", "y")))
        answers = evaluate_naive(phi, ("x", "y"), db, self.domain())
        assert answers == {("ab", "ab"), ("b", "b")}

    def test_evaluate_naive_rejects_uncovered_free_vars(self):
        with pytest.raises(AssignmentError):
            evaluate_naive(rel("R1", "x", "y"), ("x",), self.db(), self.domain())

    def test_pure_formula_ignores_database(self):
        from repro.core.shorthands import constant

        phi = lift(constant("x", "ab"))
        answers = evaluate_naive(phi, ("x",), self.db(), self.domain())
        assert answers == {("ab",)}
