"""Tests for the Query front end — both engines must agree."""

import pytest

from repro.core import shorthands as sh
from repro.core.alphabet import AB
from repro.core.database import Database
from repro.core.query import Query
from repro.core.syntax import And, Not, exists, lift, rel
from repro.errors import EvaluationError


def db() -> Database:
    return Database(
        AB,
        {
            "R1": [("a", "b"), ("ab", "ab"), ("b", "b")],
            "R2": [("ab",), ("b",), ("aab",)],
        },
    )


class TestValidation:
    def test_head_must_cover_free_variables(self):
        with pytest.raises(EvaluationError):
            Query(("x",), rel("R1", "x", "y"), AB)

    def test_head_must_not_add_variables(self):
        with pytest.raises(EvaluationError):
            Query(("x", "z"), rel("R2", "x"), AB)

    def test_head_must_not_repeat(self):
        with pytest.raises(EvaluationError):
            Query(("x", "x"), rel("R1", "x", "x"), AB)

    def test_str(self):
        q = Query(("x",), rel("R2", "x"), AB)
        assert "R2(x)" in str(q)


class TestEvaluation:
    def test_engines_agree_on_selection(self):
        phi = And(rel("R1", "x", "y"), lift(sh.equals("x", "y")))
        q = Query(("x", "y"), phi, AB)
        naive = q.evaluate(db(), length=2, engine="naive")
        algebra = q.evaluate(db(), length=2, engine="algebra")
        assert naive == algebra == {("ab", "ab"), ("b", "b")}

    def test_engines_agree_on_generation(self):
        phi = exists(
            ["y", "z"],
            And(
                And(rel("R2", "y"), rel("R2", "z")),
                lift(sh.concatenation("x", "y", "z")),
            ),
        )
        q = Query(("x",), phi, AB)
        # concatenations of R2 strings have length up to 6
        naive = q.evaluate(db(), length=6, engine="naive")
        algebra = q.evaluate(db(), length=6, engine="algebra")
        assert naive == algebra
        assert ("abab",) in naive and ("baab",) in naive

    def test_negation_respects_truncation(self):
        phi = And(rel("R2", "x"), Not(lift(sh.constant("x", "ab"))))
        q = Query(("x",), phi, AB)
        assert q.evaluate(db(), length=3) == {("b",), ("aab",)}

    def test_explicit_domain(self):
        q = Query(("x",), rel("R2", "x"), AB)
        got = q.evaluate(db(), domain=("ab", "b"))
        assert got == {("ab",), ("b",)}

    def test_unknown_engine(self):
        q = Query(("x",), rel("R2", "x"), AB)
        with pytest.raises(EvaluationError):
            q.evaluate(db(), length=1, engine="quantum")
