"""Tests for the conjunctive query planner."""

import pytest

from repro.core import shorthands as sh
from repro.core.alphabet import AB
from repro.core.database import Database
from repro.core.planner import evaluate_conjunctive
from repro.core.query import Query
from repro.core.semantics import evaluate_naive
from repro.core.syntax import And, Not, exists, f_or, lift, rel


def db() -> Database:
    return Database(
        AB,
        {
            "R1": [("a", "b"), ("ab", "ab"), ("b", "b")],
            "R2": [("ab",), ("b",), ("ba",)],
        },
    )


def assert_matches_naive(formula, head, length=3):
    database = db()
    expected = evaluate_naive(
        formula, head, database, tuple(AB.strings(length))
    )
    got = evaluate_conjunctive(formula, head, database, AB, cap=length)
    assert got == expected, (formula, expected, got)


class TestPlanner:
    def test_pure_relational_join(self):
        assert_matches_naive(
            And(rel("R1", "x", "y"), rel("R2", "y")), ("x", "y")
        )

    def test_selection_by_string_formula(self):
        assert_matches_naive(
            And(rel("R1", "x", "y"), lift(sh.equals("x", "y"))), ("x", "y")
        )

    def test_generation_of_new_strings(self):
        formula = exists(
            ["y", "z"],
            And(
                And(rel("R2", "y"), rel("R2", "z")),
                lift(sh.concatenation("x", "y", "z")),
            ),
        )
        assert_matches_naive(formula, ("x",), length=4)

    def test_negated_string_literal(self):
        formula = And(rel("R2", "x"), Not(lift(sh.constant("x", "ab"))))
        assert_matches_naive(formula, ("x",))

    def test_negated_relational_literal(self):
        formula = And(rel("R2", "x"), Not(rel("R1", "x", "x")))
        assert_matches_naive(formula, ("x",))

    def test_bidirectional_generation(self):
        # y is bidirectional in x ∈*_s y: exercises on-the-fly two-way
        # generation.
        formula = exists("x", And(rel("R2", "x"), lift(sh.manifold("x", "y"))))
        assert_matches_naive(formula, ("y",), length=3)

    def test_unsupported_shapes_return_none(self):
        disjunction = f_or(rel("R2", "x"), rel("R2", "x"))
        assert (
            evaluate_conjunctive(disjunction, ("x",), db(), AB, cap=3) is None
        )
        nested = Not(exists("y", rel("R1", "x", "y")))
        assert evaluate_conjunctive(nested, ("x",), db(), AB, cap=3) is None

    def test_unbound_negation_unsupported(self):
        formula = exists("y", Not(rel("R1", "x", "y")))
        assert evaluate_conjunctive(formula, ("x",), db(), AB, cap=3) is None

    def test_empty_result_short_circuits(self):
        formula = And(rel("Empty", "x"), lift(sh.constant("x", "a")))
        assert (
            evaluate_conjunctive(formula, ("x",), db(), AB, cap=3)
            == frozenset()
        )

    def test_query_planner_engine(self):
        q = Query(
            ("x", "y"),
            And(rel("R1", "x", "y"), lift(sh.equals("x", "y"))),
            AB,
        )
        assert q.evaluate(db(), length=3, engine="planner") == {
            ("ab", "ab"),
            ("b", "b"),
        }

    def test_query_planner_handles_disjunction(self):
        # Disjunctions used to be rejected wholesale; the normalizer
        # now splits them into a union of conjunctive branches.
        formula = f_or(rel("R2", "x"), rel("R1", "x", "x"))
        q = Query(("x",), formula, AB)
        expected = evaluate_naive(
            formula, ("x",), db(), tuple(AB.strings(2))
        )
        assert q.evaluate(db(), length=2, engine="planner") == expected

    def test_query_planner_rejects_unsupported(self):
        from repro.errors import EvaluationError

        # A negated quantifier is not a literal, so the plan degrades
        # to a naive fallback and the planner strategy refuses it.
        q = Query(("x",), Not(exists("y", rel("R1", "x", "y"))), AB)
        with pytest.raises(EvaluationError):
            q.evaluate(db(), length=2, engine="planner")
