"""Differential proof: the storage backend never changes answers.

Every engine must return byte-identical answer sets whether relations
live in plain frozensets or behind the positional n-gram index — on
random databases from every workload generator (hypothesis-driven) and
on adversarial relations whose strings share all their n-grams, the
regime where a non-positional index would over- or under-prune.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import shorthands as sh
from repro.core.alphabet import AB, Alphabet
from repro.core.database import Database
from repro.core.query import Query
from repro.core.syntax import And, Not, exists, f_or, lift, rel
from repro.engine import QueryEngine
from repro.storage import NGramIndexStorage, storage_factory
from repro.workloads.generators import (
    copy_language_strings,
    example_database,
    manifold_strings,
    near_duplicates,
    uniform_strings,
    with_planted_motif,
)

DNA = Alphabet("acgt")
ENGINES = ("naive", "planner", "algebra", "auto")

#: Every generator in workloads/generators.py, as a seeded factory —
#: string lengths stay ≤ 2 so the cap-2 truncation domain covers the
#: databases and all engines share one exact semantics.
GENERATORS = {
    "uniform": lambda seed: example_database(
        AB,
        singles=uniform_strings(AB, 4, 2, seed=seed),
        seed=seed,
        size=3,
        max_length=2,
    ),
    "motif": lambda seed: example_database(
        AB,
        singles=with_planted_motif(AB, "b", count=4, max_length=1, seed=seed),
        seed=seed,
        size=3,
        max_length=2,
    ),
    "near-dup": lambda seed: example_database(
        AB,
        singles=near_duplicates(AB, "a", count=4, max_edits=1, seed=seed),
        seed=seed,
        size=3,
        max_length=2,
    ),
    "copy-lang": lambda seed: example_database(
        AB,
        singles=copy_language_strings(count=4, max_half_length=1, seed=seed),
        seed=seed,
        size=3,
        max_length=2,
    ),
    "manifold": lambda seed: example_database(
        AB,
        pairs=manifold_strings(
            AB, count=3, max_base_length=1, max_repeats=2, seed=seed
        ),
        seed=seed,
        size=3,
        max_length=2,
    ),
    "example": lambda seed: example_database(
        AB, seed=seed, size=3, max_length=2
    ),
}


def _queries(alphabet):
    """Query shapes covering joins, string filters and disjunctions."""
    yield "join-filter", Query(
        ("x", "y"),
        And(
            lift(sh.prefix_of("x", "y")),
            And(rel("R1", "x", "y"), Not(rel("R2", "y"))),
        ),
        alphabet,
    )
    yield "disjunction", Query(
        ("x",), f_or(rel("R2", "x"), rel("R1", "x", "x")), alphabet
    )
    yield "nested-exists", Query(
        ("x",),
        exists("y", And(rel("R1", "x", "y"), rel("R2", "y"))),
        alphabet,
    )
    yield "substring", Query(
        ("x",),
        exists("y", And(rel("R1", "x", "y"), lift(sh.occurs_in("x", "y")))),
        alphabet,
    )


def _assert_backends_agree(plain, cap, n=2):
    indexed = plain.with_storage(
        lambda name, tuples, alphabet: NGramIndexStorage.build(tuples, n=n)
    )
    session = QueryEngine()
    for name, query in _queries(plain.alphabet):
        answers = {
            engine: session.evaluate(query, plain, length=cap, engine=engine)
            for engine in ENGINES
        }
        for engine in ENGINES:
            got = session.evaluate(query, indexed, length=cap, engine=engine)
            assert got == answers[engine], (
                f"{name}: engine={engine} diverged between memory and "
                f"ngram storage"
            )


@settings(max_examples=6, deadline=None)
@pytest.mark.parametrize(
    "generator", sorted(GENERATORS), ids=sorted(GENERATORS)
)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_backends_agree_on_every_workload_generator(generator, seed):
    _assert_backends_agree(GENERATORS[generator](seed), cap=2)


#: Strings built from {"gc", "cg"} blocks share every 2-gram while
#: differing in gram order — adversarial for a positional index.
_SHARED_GRAM = st.lists(
    st.sampled_from(["gc", "cg", "g", "c"]), min_size=0, max_size=3
).map("".join)


@settings(max_examples=20, deadline=None)
@given(
    singles=st.lists(_SHARED_GRAM, min_size=1, max_size=6),
    pairs=st.lists(
        st.tuples(_SHARED_GRAM, _SHARED_GRAM), min_size=1, max_size=6
    ),
)
def test_backends_agree_on_adversarial_shared_gram_relations(singles, pairs):
    db = Database(
        DNA, {"R1": pairs, "R2": [(s,) for s in singles]}
    )
    _assert_backends_agree(db, cap=2)


def test_cli_storage_flag_matches_memory(tmp_path, capsys):
    """`--storage ngram --index-dir` end to end: same stdout tuples."""
    from repro.cli import main

    db_file = tmp_path / "db.json"
    db_file.write_text(
        '{"R2": [["gcgc"], ["cgcg"], ["acgt"], ["aa"]]}'
    )
    formula = (
        "exists y: R2(y) & ([y]l)* . ([x,y]l(x = y))* . [x]l(x = eps)"
    )
    argv = [
        "query",
        "--alphabet",
        "acgt",
        "--db",
        str(db_file),
        "--head=x",
        "--length",
        "4",
    ]
    assert main(argv + [formula]) == 0
    plain = capsys.readouterr().out
    assert plain  # the substring query has answers
    index_dir = tmp_path / "idx"
    ngram = ["--storage", "ngram", "--index-dir", str(index_dir)]
    assert main(argv + ngram + [formula]) == 0
    assert capsys.readouterr().out == plain
    assert (index_dir / "R2.ngx").exists()
    # Second run reuses the artifact and still agrees.
    assert main(argv + ngram + [formula]) == 0
    assert capsys.readouterr().out == plain
