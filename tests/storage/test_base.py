"""The storage protocol, the in-memory backend and the Relation view."""

import pickle

import pytest

from repro.core.alphabet import AB
from repro.core.database import Database
from repro.errors import ArityError
from repro.storage import (
    EMPTY_STORAGE,
    InMemoryStorage,
    NGramIndexStorage,
    Relation,
    RelationStorage,
    compute_stats,
    is_storage,
    resolve_storage_factory,
    storage_factory,
)

ROWS = frozenset({("ab", "b"), ("a", ""), ("ba", "ab")})


def test_in_memory_storage_protocol_surface():
    store = InMemoryStorage(ROWS)
    assert isinstance(store, RelationStorage)
    assert is_storage(store)
    assert store.arity == 2
    assert store.size() == 3
    assert frozenset(store.scan()) == ROWS
    assert store.contains(("ab", "b"))
    assert not store.contains(("b", "ab"))
    assert store.column(0) == ("a", "ab", "ba")
    assert store.column(1) == ("", "ab", "b")


def test_in_memory_storage_rejects_mixed_and_mismatched_arity():
    with pytest.raises(ArityError):
        InMemoryStorage({("a",), ("a", "b")})
    with pytest.raises(ArityError):
        InMemoryStorage({("a", "b")}, arity=3)
    empty = InMemoryStorage(frozenset(), arity=2)
    assert empty.arity == 2
    assert empty.size() == 0


def test_compute_stats_per_column():
    stats = compute_stats((("a", "xyz"), ("a", "x"), ("bb", "x")), 2)
    assert stats.rows == 3
    assert stats.arity == 2
    first, second = stats.columns
    assert first.distinct == 2
    assert second.distinct == 2
    assert first.min_length == 1 and first.max_length == 2
    assert second.min_length == 1 and second.max_length == 3
    assert second.total_chars == 5
    assert dict(first.length_histogram) == {1: 2, 2: 1}
    assert first.mean_length == pytest.approx(4 / 3)


def test_stats_agree_across_backends():
    memory = InMemoryStorage(ROWS)
    indexed = NGramIndexStorage.build(ROWS, n=2)
    assert memory.stats() == indexed.stats()


def test_relation_view_behaves_like_the_frozenset_it_wraps():
    view = Relation("R1", InMemoryStorage(ROWS))
    assert view.name == "R1"
    assert view.arity == 2
    assert len(view) == 3
    assert set(view) == ROWS
    assert ("ab", "b") in view
    assert ("zz", "zz") not in view
    assert "ab" not in view  # non-tuples are never members
    assert bool(view)
    assert not Relation("E", EMPTY_STORAGE)
    assert view.column(1) == ("", "ab", "b")
    # Equality against Relation, set and frozenset; hash matches tuples.
    assert view == Relation("other-name", InMemoryStorage(ROWS))
    assert view == ROWS
    assert view == set(ROWS)
    assert ROWS == view.tuples
    assert hash(view) == hash(ROWS)
    assert view != {("zz", "zz")}
    assert "R1" in repr(view)


def test_database_relation_returns_view_and_tuples_back_compat():
    db = Database(AB, {"R": [("a", "b")]})
    view = db.relation("R")
    assert isinstance(view, Relation)
    assert view.tuples == frozenset({("a", "b")})
    assert db.relation("missing").tuples == frozenset()
    assert len(db.relation("missing")) == 0


def test_database_arity_default_and_declare():
    db = Database(AB, {"R": [("a", "b")]})
    assert db.arity("R") == 2
    with pytest.raises(ArityError):
        db.arity("missing")
    assert db.arity("missing", default=None) is None
    assert db.arity("missing", default=7) == 7
    declared = db.declare("S", 3)
    assert declared.arity("S") == 3
    assert declared.relation("S").tuples == frozenset()
    # Re-declaring the same arity is a no-op returning self.
    assert declared.declare("S", 3) is declared
    assert declared.declare("R", 2) is declared
    with pytest.raises(ArityError):
        declared.declare("R", 3)


def test_with_relation_is_incremental_in_the_changed_relation():
    db = Database(AB, {"R": [("a",)], "S": [("b", "b")]})
    untouched = db.storage("S")
    updated = db.with_relation("R", {("b",), ("ab",)})
    # The unchanged relation's backend is adopted, not rebuilt.
    assert updated.storage("S") is untouched
    assert updated.relation("R").tuples == frozenset({("b",), ("ab",)})
    assert db.relation("R").tuples == frozenset({("a",)})


def test_database_storage_constructor_and_with_storage():
    factory = storage_factory("ngram")
    db = Database(AB, {"R": [("ab", "b")]}, storage=factory)
    assert isinstance(db.storage("R"), NGramIndexStorage)
    swapped = db.with_storage(storage_factory("memory"))
    assert isinstance(swapped.storage("R"), InMemoryStorage)
    assert swapped == db  # equality is value-level, not backend-level
    assert hash(swapped) == hash(db)


def test_from_json_storage_factory_hook(tmp_path):
    source = tmp_path / "db.json"
    source.write_text('{"R": [["ab", "ba"]]}')
    db = Database.from_json(source, AB, storage_factory=storage_factory("ngram"))
    assert isinstance(db.storage("R"), NGramIndexStorage)
    assert db.relation("R").tuples == frozenset({("ab", "ba")})


def test_resolve_storage_factory_accepts_names_and_callables():
    from repro.errors import StorageError

    assert resolve_storage_factory(None)("R", frozenset(), AB).size() == 0
    named = resolve_storage_factory("ngram")
    assert isinstance(named("R", frozenset({("a",)}), AB), NGramIndexStorage)
    passthrough = resolve_storage_factory(
        lambda name, tuples, alphabet: InMemoryStorage(tuples)
    )
    assert isinstance(passthrough("R", frozenset(), AB), InMemoryStorage)
    with pytest.raises(StorageError):
        resolve_storage_factory("btree")
    with pytest.raises(StorageError):
        storage_factory("btree")


def test_databases_pickle_with_both_backends():
    plain = Database(AB, {"R": [("ab", "b")]})
    indexed = plain.with_storage(storage_factory("ngram"))
    for db in (plain, indexed):
        clone = pickle.loads(pickle.dumps(db))
        assert clone == db
        assert clone.relation("R").tuples == frozenset({("ab", "b")})
