"""The positional n-gram index: probes, the artifact format, sharing."""

import pickle

import pytest

from repro.core.alphabet import Alphabet
from repro.core.database import Database
from repro.errors import ArityError, ArtifactError
from repro.storage import NGramIndexStorage, probe_candidates, storage_factory
from repro.storage.artifact import MAGIC, content_fingerprint

DNA = Alphabet("acgt")

#: Adversarial strings sharing all their 2-grams but differing in order
#: — a positional index must separate them, a bag-of-grams one cannot.
SHARED_GRAM_ROWS = (
    ("gcgc",),
    ("cgcg",),
    ("gcgcgc",),
    ("ggcc",),
    ("cc",),
)


def _build(rows=SHARED_GRAM_ROWS, n=2):
    return NGramIndexStorage.build(rows, n=n)


def test_candidates_respect_gram_positions():
    store = _build()
    rows = tuple(sorted(SHARED_GRAM_ROWS))
    def ids(factor):
        found = store.candidates(0, factor)
        return None if found is None else {rows[i][0] for i in found}

    assert ids("gcg") == {"gcgc", "cgcg", "gcgcgc"}
    assert ids("cgc") == {"gcgc", "cgcg", "gcgcgc"}
    assert ids("gcgcgc") == {"gcgcgc"}
    # "cgcg" holds every 2-gram of "gcgc" ("gc" and "cg") — only the
    # positional consecutive-shift intersection can exclude it.
    assert ids("gcgc") == {"gcgc", "gcgcgc"}
    assert ids("cgcg") == {"cgcg", "gcgcgc"}
    assert ids("gccg") == set()
    assert ids("zz") == set()


def test_candidates_below_gram_size_decline_to_prune():
    store = _build(n=3)
    assert store.candidates(0, "gc") is None
    assert probe_candidates(store, 0, ("gc",)) is None
    # A mix of short and long factors still prunes on the long one.
    found = probe_candidates(store, 0, ("gc", "gcgcgc"))
    assert found is not None and len(found) == 1


def test_rows_for_returns_sorted_unique_rows():
    store = _build()
    found = store.candidates(0, "gcgc")
    assert found is not None
    assert tuple(store.rows_for(found)) == (("gcgc",), ("gcgcgc",))
    doubled = tuple(found) + tuple(found)
    assert tuple(store.rows_for(doubled)) == (("gcgc",), ("gcgcgc",))


def test_build_canonicalizes_and_checks_arity():
    store = NGramIndexStorage.build([("b", "a"), ("b", "a"), ("a", "b")], n=2)
    assert store.size() == 2
    assert store.column(0) == ("a", "b")
    with pytest.raises(ArityError):
        NGramIndexStorage.build([("a",), ("a", "b")], n=2)
    with pytest.raises(ArityError):
        NGramIndexStorage.build([("a", "b")], n=2, arity=1)


def test_artifact_round_trip(tmp_path):
    path = tmp_path / "R.ngx"
    built = _build()
    built.write(path)
    opened = NGramIndexStorage.open(path)
    assert opened.path == path
    assert opened.tuples == built.tuples
    assert opened.stats() == built.stats()
    assert opened.column(0) == built.column(0)
    assert opened.contains(("ggcc",))
    for factor in ("gcg", "cgc", "gcgcgc", "zz"):
        assert opened.candidates(0, factor) == built.candidates(0, factor)


def test_ensure_builds_once_and_rebuilds_on_content_change(tmp_path):
    path = tmp_path / "R.ngx"
    first = NGramIndexStorage.ensure(path, SHARED_GRAM_ROWS, n=2)
    stamp = path.stat().st_mtime_ns
    again = NGramIndexStorage.ensure(path, SHARED_GRAM_ROWS, n=2)
    assert path.stat().st_mtime_ns == stamp  # reused, not rewritten
    assert again.tuples == first.tuples
    changed = NGramIndexStorage.ensure(
        path, SHARED_GRAM_ROWS + (("tttt",),), n=2
    )
    assert ("tttt",) in changed.tuples
    assert NGramIndexStorage.open(path).contains(("tttt",))
    # A different gram size is a different content fingerprint.
    assert content_fingerprint(tuple(sorted(SHARED_GRAM_ROWS)), 2) != (
        content_fingerprint(tuple(sorted(SHARED_GRAM_ROWS)), 3)
    )


def test_corrupt_artifacts_are_rejected(tmp_path):
    path = tmp_path / "R.ngx"
    _build().write(path)
    pristine = path.read_bytes()

    with pytest.raises(ArtifactError):
        NGramIndexStorage.open(tmp_path / "missing.ngx")

    path.write_bytes(pristine[: len(pristine) // 2])  # truncated
    with pytest.raises(ArtifactError):
        NGramIndexStorage.open(path)

    flipped = bytearray(pristine)
    flipped[len(flipped) - 3] ^= 0xFF  # payload bit rot → sha mismatch
    path.write_bytes(bytes(flipped))
    with pytest.raises(ArtifactError):
        NGramIndexStorage.open(path)

    path.write_bytes(b"XX" + pristine[2:])  # wrong magic
    with pytest.raises(ArtifactError):
        NGramIndexStorage.open(path)

    bumped = bytearray(pristine)
    bumped[len(MAGIC)] ^= 0xFF  # incompatible version
    path.write_bytes(bytes(bumped))
    with pytest.raises(ArtifactError):
        NGramIndexStorage.open(path)

    # ensure() heals every one of those by rebuilding.
    healed = NGramIndexStorage.ensure(path, SHARED_GRAM_ROWS, n=2)
    assert healed.tuples == frozenset(SHARED_GRAM_ROWS)


def test_artifact_backed_storage_pickles_by_path(tmp_path):
    path = tmp_path / "R.ngx"
    store = NGramIndexStorage.ensure(path, SHARED_GRAM_ROWS, n=2)
    payload = pickle.dumps(store)
    # The rows travel as a path, not as serialized strings.
    assert b"gcgcgc" not in payload
    clone = pickle.loads(payload)
    assert clone.path == path
    assert clone.tuples == store.tuples

    in_memory = _build()
    clone = pickle.loads(pickle.dumps(in_memory))
    assert clone.path is None
    assert clone.tuples == in_memory.tuples
    assert clone.candidates(0, "gcg") == in_memory.candidates(0, "gcg")


def test_parallel_workers_share_one_artifact(tmp_path):
    """A database over artifact-backed storage crosses the process
    boundary as paths; the parallel engine's answers stay identical."""
    from repro.core.query import Query
    from repro.core.syntax import rel
    from repro.engine import QueryEngine

    singles = [
        ("gcgcgc",), ("acgtac",), ("gcgc",), ("ttgcgt",), ("aaaa",),
    ]
    plain = Database(DNA, {"R2": singles})
    factory = storage_factory("ngram", index_dir=tmp_path)
    indexed = plain.with_storage(factory)
    assert indexed.storage("R2").path == tmp_path / "R2.ngx"

    payload = pickle.dumps(indexed)
    assert b"acgtac" not in payload  # rows did not ride the pickle
    worker_view = pickle.loads(payload)
    assert worker_view.storage("R2").path == tmp_path / "R2.ngx"
    assert worker_view == indexed

    query = Query(("x",), rel("R2", "x"), DNA)
    session = QueryEngine()
    expected = session.evaluate(query, plain, length=6)
    for db in (indexed, worker_view):
        got = session.evaluate(
            query, db, length=6, engine="parallel", workers=2
        )
        assert got == expected
