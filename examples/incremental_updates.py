"""Incremental evaluation under updates: one warm session, many versions.

A warm ``QueryEngine`` materializes two queries over a small
database, then absorbs a stream of inserts and deletes through
``apply_delta`` — dependency-scoped cache invalidation plus
semi-naive maintenance of the materialized answers.  After every
update the maintained answer is checked against a cold from-scratch
evaluation, so the transcript doubles as a correctness demo.

Run with:  python examples/incremental_updates.py [--stats]

``--stats`` appends the session's invalidation and maintenance
counters — how many cache entries each update evicted, and how each
materialized answer was repaired (branches skipped, re-run
semi-naively, or recomputed).
"""

import argparse

from repro.core import Database, Query
from repro.core import shorthands as sh
from repro.core.alphabet import AB
from repro.core.syntax import And, lift, rel
from repro.delta import Delta, DeltaLog
from repro.engine import QueryEngine
from repro.observability import Tracer

QUERIES = {
    "prefix-pairs  R1(x,y) & x<=y": Query(
        ("x", "y"),
        And(rel("R1", "x", "y"), lift(sh.prefix_of("x", "y"))),
        AB,
    ),
    "members       R2(x)": Query(("x",), rel("R2", "x"), AB),
}

#: The update stream: a trickle of inserts and deletes, plus one
#: coalesced batch built through DeltaLog.
UPDATES = [
    ("insert a matching pair", Delta.of(inserts={"R1": [("a", "ab")]})),
    ("delete one member", Delta.of(deletes={"R2": [("b",)]})),
    (
        "batched edits (last-op-wins)",
        DeltaLog()
        .insert("R2", ("bb",))
        .delete("R2", ("bb",))
        .insert("R2", ("ba",))
        .insert("R1", ("b", "ba"))
        .build(),
    ),
]


def show(label, answers):
    rows = ", ".join("/".join(row) for row in sorted(answers)) or "(empty)"
    print(f"  {label}: {rows}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--stats", action="store_true",
        help="print invalidation and maintenance counters",
    )
    args = parser.parse_args()

    db = Database(
        AB,
        {"R1": [("a", "aa"), ("b", "ab")], "R2": [("a",), ("b",)]},
    )
    session = QueryEngine(tracer=Tracer())

    print("initial answers (materialized):")
    for label, query in QUERIES.items():
        show(label, session.evaluate(query, db, length=2, materialize=True))

    for step, (what, delta) in enumerate(UPDATES, start=1):
        db = session.apply_delta(db, delta)
        print(f"\nupdate {step}: {what}  (|delta| = {delta.size})")
        for label, query in QUERIES.items():
            warm = session.evaluate(query, db, length=2, materialize=True)
            cold = QueryEngine().evaluate(query, db, length=2)
            assert warm == cold, "incremental diverged from from-scratch"
            show(label, warm)

    if args.stats:
        counters = session.tracer.counters
        print("\nupdate-path counters:")
        families = ("delta.", "cache.invalidate.", "index.")
        for name in sorted(counters):
            if name.startswith(families):
                print(f"  {name} = {counters[name]}")
        print("cache invalidation totals:")
        for name, stats in sorted(session.trace_report().caches.items()):
            if stats.get("invalidated"):
                print(f"  {name}: invalidated={stats['invalidated']}")


if __name__ == "__main__":
    main()
