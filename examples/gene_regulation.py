"""Gene-regulation motifs: the paper's motivating workload.

Section 1 motivates alignment calculus with the combinatorial (often
non-context-free) structure of genetic sequences.  This example builds
a synthetic DNA database with planted structure and runs the queries
the introduction promises:

* pattern selection ``(gc + a)*`` (Example 6);
* motif occurrence (Example 7);
* the copy-with-translation language of Example 12 — a textbook
  non-context-free dependency;
* the ``aXbXa`` tandem-repeat shape of Example 9.

Run with:  python examples/gene_regulation.py
"""

from repro.core import Database, Query
from repro.core import shorthands as sh
from repro.core.alphabet import AB, Alphabet
from repro.core.syntax import And, exists, lift, rel
from repro.workloads import generators


def main() -> None:
    gca = Alphabet("gca")

    # -- Example 6: regular selection over a motif-planted relation ----
    fragments = generators.with_planted_motif(
        gca, motif="gcgc", count=10, max_length=4, seed=7
    )
    db = Database(gca, {"F": [(s,) for s in fragments]})
    pattern_query = Query(
        ("y",), And(rel("F", "y"), lift(sh.gc_plus_a_star("y"))), gca
    )
    print("Fragments matching (gc + a)*:")
    for row in sorted(pattern_query.evaluate(db, length=8)):
        print("   ", row[0] or "ε")

    # -- Example 7: motif occurrence ------------------------------------
    motif_query = Query(
        ("y",),
        exists(
            "m",
            And(
                rel("F", "y"),
                And(lift(sh.constant("m", "gcgc")), lift(sh.occurs_in("m", "y"))),
            ),
        ),
        gca,
    )
    print('Fragments containing the planted motif "gcgc":')
    for row in sorted(motif_query.evaluate(db, length=8)):
        print("   ", row[0])

    # -- Example 12: copy-with-translation (non-context-free) -----------
    copies = generators.copy_language_strings(count=6, max_half_length=2, seed=3)
    noise = generators.uniform_strings(AB, count=6, max_length=4, seed=4)
    db2 = Database(AB, {"R2": [(s,) for s in copies + noise]})
    translation_query = Query(
        ("x",),
        And(rel("R2", "x"), sh.is_copy_translation("x", "y", "z")),
        AB,
    )
    print("Strings whose second half is the a↔b translation of the first:")
    for row in sorted(translation_query.evaluate(db2, length=4)):
        print("   ", row[0] or "ε")

    # -- Example 9: aXbXa tandem repeats ---------------------------------
    tandem = ["a" + x + "b" + x + "a" for x in ("", "ab", "ba")]
    db3 = Database(AB, {"R2": [(s,) for s in tandem + noise]})
    tandem_query = Query(
        ("x",),
        And(rel("R2", "x"), sh.is_axbxa("x", "y", "z")),
        AB,
    )
    print("Strings of the form aXbXa:")
    for row in sorted(tandem_query.evaluate(db3, length=3)):
        print("   ", row[0])


if __name__ == "__main__":
    main()
