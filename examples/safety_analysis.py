"""Safety analysis in action (Section 5).

Shows the limitation analysis deciding which queries may safely
*generate* strings: the paper's manifold pair — one direction safe,
the mirrored one unsafe — plus the certified limit function a safe
query uses to pick its truncation length automatically.

Run with:  python examples/safety_analysis.py
"""

from repro.core import Database, Query
from repro.core import shorthands as sh
from repro.core.alphabet import AB
from repro.core.syntax import And, exists, lift, rel
from repro.errors import SafetyError
from repro.safety.domain_independence import limit_function
from repro.safety.limitation import formula_limitation


def main() -> None:
    # -- The limitation question on the manifold predicate -------------
    print("Limitation analysis of x ∈*_s y (x a manifold of y):")
    safe = formula_limitation(sh.manifold("x", "y"), ["x"], ["y"], AB)
    print(f"  [x] ↝ [y]:  limited={safe.limited}")
    print(f"     reason: {safe.reason}")
    print(f"     crossing automaton size |A″| = {safe.crossing_size}")
    print(f"     certified limit: {safe.limit.describe()}")

    unsafe = formula_limitation(sh.manifold("x", "y"), ["y"], ["x"], AB)
    print(f"  [y] ↝ [x]:  limited={unsafe.limited}")
    print(f"     reason: {unsafe.reason}")

    # -- The paper's query pair -----------------------------------------
    db = Database(AB, {"R": [("abab",), ("aa",)]})

    safe_query = Query(
        ("y",),
        exists("x", And(rel("R", "x"), lift(sh.manifold("x", "y")))),
        AB,
    )
    report = limit_function(safe_query.formula, AB)
    print("Safe query  y | ∃x: R(x) ∧ x ∈*_s y")
    print(f"  limit function: {report.describe()}")
    print(f"  W(db) = {report.bound(db)}")
    print(f"  answer: {sorted(safe_query.evaluate(db))}")

    unsafe_query = Query(
        ("y",),
        exists("x", And(rel("R", "x"), lift(sh.manifold("y", "x")))),
        AB,
    )
    print("Unsafe query  y | ∃x: R(x) ∧ y ∈*_s x")
    try:
        unsafe_query.evaluate(db)
    except SafetyError as error:
        print(f"  rejected: {error}")
    truncated = unsafe_query.evaluate(db, length=8)
    print(
        f"  truncated answer at l=8 has {len(truncated)} tuples "
        "(and keeps growing with l — the query is unsafe)"
    )
    assert len(unsafe_query.evaluate(db, length=12)) > len(truncated)


if __name__ == "__main__":
    main()
