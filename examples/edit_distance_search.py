"""Similarity search with bounded edit distance (Example 8).

Builds a database of near-duplicates of a reference sequence, then
selects the tuples within edit distance ``k`` — once through the
Example 8 alignment calculus formula (evaluated by the compiled
multitape automaton) and once with the classical Wagner-Fischer
dynamic program as the baseline, verifying they agree.

Also demonstrates the counter variant: the edit budget carried as a
string ``a^k`` in a third column, the paper's trick for making the
bound data rather than formula text.

Run with:  python examples/edit_distance_search.py
"""

from repro.core import Database
from repro.core import shorthands as sh
from repro.core.alphabet import DNA
from repro.core.semantics import check_string_formula
from repro.fsa.compile import compile_string_formula
from repro.fsa.simulate import accepts
from repro.workloads import generators, oracles

REFERENCE = "acgt"
BUDGET = 2


def main() -> None:
    candidates = generators.near_duplicates(
        DNA, REFERENCE, count=12, max_edits=4, seed=11
    )
    db = Database(DNA, {"Seq": [(s,) for s in candidates]})

    formula = sh.edit_distance_at_most("x", "y", BUDGET)
    compiled = compile_string_formula(formula, DNA)
    print(f"Machine for edit_distance(x, y) <= {BUDGET}: {compiled.fsa}")

    print(f"Sequences within {BUDGET} edits of {REFERENCE!r}:")
    for (candidate,) in sorted(db.relation("Seq")):
        values = {"x": REFERENCE, "y": candidate}
        by_formula = check_string_formula(formula, values)
        by_machine = accepts(
            compiled.fsa, tuple(values[v] for v in compiled.variables)
        )
        by_baseline = oracles.edit_distance(REFERENCE, candidate) <= BUDGET
        assert by_formula == by_machine == by_baseline
        marker = "+" if by_formula else " "
        print(
            f"  [{marker}] {candidate:<8} "
            f"(distance {oracles.edit_distance(REFERENCE, candidate)})"
        )

    # Counter variant: (u, v, a^k) with the budget in the data.
    counter = sh.edit_distance_counter("x", "y", "z")
    print("Counter variant — smallest accepted budget per candidate:")
    for (candidate,) in sorted(db.relation("Seq")):
        for k in range(0, 9):
            if check_string_formula(
                counter, {"x": REFERENCE, "y": candidate, "z": "a" * k}
            ):
                print(f"    {candidate:<8} needs budget a^{k}")
                assert k == oracles.edit_distance(REFERENCE, candidate)
                break


if __name__ == "__main__":
    main()
