"""Reproduce the paper's Figures 1-3 and 6 as text.

* Figure 1 — an alignment of abc / abb / cacd;
* Figure 2 — four transposes of that alignment;
* Figure 3 — the corresponding multitape configuration;
* Figure 6 — a string formula compiled to a 3-FSA (rendered as a
  machine summary and DOT graph source).

Run with:  python examples/render_figures.py
"""

from repro.core.alignment import Alignment, Row
from repro.core.alphabet import AB
from repro.core.syntax import (
    IsChar,
    SameChar,
    SStar,
    atom,
    concat,
    left,
    not_empty,
    right,
)
from repro.fsa.compile import compile_string_formula
from repro.fsa.render import to_dot, to_text


def figure_1() -> Alignment:
    return Alignment.from_rows(
        {0: Row("abc", 1), 1: Row("abb", 2), 2: Row("cacd", 2)}
    )


def main() -> None:
    alignment = figure_1()
    print("Figure 1 — an alignment of three strings:")
    print(alignment.render())
    print()

    print("Figure 2 — transposing alignments:")
    for label, moved in [
        ("[0]_l", alignment.transpose_left([0])),
        ("[1,2]_l", alignment.transpose_left([1, 2])),
        ("[0]_r", alignment.transpose_right([0])),
        ("[0,2]_r", alignment.transpose_right([0, 2])),
    ]:
        print(f"-- after {label}:")
        print(moved.render())
        print()

    print("Figure 3 — the tape configuration corresponding to Figure 1:")
    for index in alignment.set_rows:
        row = alignment.row(index)
        cells = ["⊢", *row.string, "⊣"]
        rendered = " ".join(cells)
        pointer = "  " * row.head + "^"
        print(f"  tape {index}:  {rendered}")
        print(f"           {pointer}")
    print()

    # Figure 6's machine: a formula mixing left/right transposes on
    # three variables over {a, b}.
    formula = concat(
        SStar(atom(left("x", "y"), SameChar("x", "y"))),
        atom(left("x"), IsChar("x", "a")),
        SStar(atom(right("y"), not_empty("y"))),
        atom(left("z"), SameChar("y", "z")),
    )
    compiled = compile_string_formula(formula, AB)
    print("Figure 6 — a string formula and a corresponding 3-FSA:")
    print(f"  formula: {formula}")
    print(f"  tapes:   {compiled.variables}")
    print(f"  machine: {compiled.fsa}")
    print()
    print("Machine listing (first lines):")
    for line in to_text(compiled.fsa).splitlines()[:10]:
        print("  " + line)
    print("  ...")
    print()
    print("DOT source (first lines):")
    for line in to_dot(compiled.fsa).splitlines()[:8]:
        print("  " + line)
    print("  ...")


if __name__ == "__main__":
    main()
