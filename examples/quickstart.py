"""Quickstart: a string database and its first alignment calculus queries.

Walks through the paper's core workflow:

1. fix an alphabet and store string relations;
2. express queries in alignment calculus (relational layer + string
   formulae);
3. evaluate — either naively, or through the paper's procedural route
   (translate to alignment algebra, select/generate with multitape
   automata), with the truncation length certified by the safety
   analysis.

Run with:  python examples/quickstart.py
"""

from repro.core import Database, Query
from repro.core import shorthands as sh
from repro.core.alphabet import DNA
from repro.core.syntax import And, exists, lift, rel


def main() -> None:
    # A tiny genomic-flavoured database: R1 pairs each gene tag with a
    # regulatory sequence; R2 stores observed fragments.
    db = Database(
        DNA,
        {
            "R1": [
                ("ac", "ac"),
                ("ac", "gc"),
                ("tt", "tt"),
            ],
            "R2": [("acgc",), ("gc",), ("acac",)],
        },
    )

    # Example 2 of the paper: tuples of R1 whose components are equal.
    equal_pairs = Query(
        ("x", "y"),
        And(rel("R1", "x", "y"), lift(sh.equals("x", "y"))),
        DNA,
    )
    print("Example 2 — equal pairs in R1:")
    for row in sorted(equal_pairs.evaluate(db, length=3)):
        print("   ", row)

    # Example 3: fragments in R2 that concatenate a tuple of R1.
    concatenations = Query(
        ("x",),
        exists(
            ["y", "z"],
            And(
                And(rel("R1", "y", "z"), rel("R2", "x")),
                lift(sh.concatenation("x", "y", "z")),
            ),
        ),
        DNA,
    )
    print("Example 3 — R2 fragments that are concatenations of an R1 pair:")
    # No explicit length: the safety analysis certifies the truncation
    # bound from the database (domain independence, Definition 3.2).
    for row in sorted(concatenations.evaluate(db)):
        print("   ", row)

    # The same query through the algebra engine (Theorem 4.2 route):
    # selection and string generation are performed by compiled
    # multitape two-way automata.
    algebra_answer = concatenations.evaluate(db, length=4, engine="algebra")
    assert algebra_answer == concatenations.evaluate(db)
    print("   (algebra engine agrees)")

    # Example 7: fragments of R2 in which the string "cg" occurs — the
    # pattern string is pinned by a constant formula on a quantified
    # variable.
    occurrences = Query(
        ("x",),
        exists(
            "p",
            And(
                rel("R2", "x"),
                And(lift(sh.constant("p", "cg")), lift(sh.occurs_in("p", "x"))),
            ),
        ),
        DNA,
    )
    print('Example 7 — R2 fragments containing "cg":')
    # Auto mode: certified bound + the conjunctive planner.
    for row in sorted(occurrences.evaluate(db)):
        print("   ", row)


if __name__ == "__main__":
    main()
