"""The polynomial hierarchy inside alignment calculus (Theorem 6.5).

Builds the paper's machine family for a hierarchy level — the type
qualifiers ``M_i``, the assignment interleaver ``M^k`` and the
right-restricted matrix evaluator ``M^k_σ`` — and decides QBF
instances through the quantifier-limited formula structure, comparing
against the classical recursive evaluation.

Run with:  python examples/polynomial_hierarchy.py
"""

from repro.expressive.qbf import (
    QBF,
    encode_assignment,
    encode_qbf,
    evaluate_qbf_via_machines,
    machines_for_level,
)
from repro.safety.limitation import decide_limitation


def main() -> None:
    # ∀x ∃y: (x ∨ y) ∧ (¬x ∨ ¬y)  — "y can always be ¬x": true, Π₂.
    qbf = QBF(
        (("A", ("x",)), ("E", ("y",))),
        (((True, "x"), (True, "y")), ((False, "x"), (False, "y"))),
    )
    instance = encode_qbf(qbf)
    print("QBF:      ∀x ∃y. (x ∨ y) ∧ (¬x ∨ ¬y)")
    print(f"encoded:  {instance}")
    print(f"level:    Π^p_{qbf.level} (leading ∀, {qbf.level - 1} alternation)")
    sample = encode_assignment(qbf, {"x": True, "y": False})
    print(f"sample assignment string: {sample}")
    print()

    machines = machines_for_level(qbf.level, qbf.blocks[0][0])
    print("The Theorem 6.5 machine family:")
    for index, qualifier in enumerate(machines.block_machines, start=1):
        report = decide_limitation(qualifier, [0], [1])
        print(
            f"  M_{index}: {qualifier}  — limitation [1]↝[2]: "
            f"{report.limited} ({report.limit.describe()})"
        )
    print(f"  M^k: {machines.interleaver}")
    print(f"  M^k_σ: {machines.matrix_machine}  "
          f"(bidirectional tapes: {sorted(machines.matrix_machine.bidirectional_tapes())})")
    print()

    via_machines = evaluate_qbf_via_machines(qbf)
    via_oracle = qbf.evaluate()
    print(f"machine-pipeline verdict: {via_machines}")
    print(f"recursive-oracle verdict: {via_oracle}")
    assert via_machines == via_oracle

    # A false sibling: ∀x ∃y: (x ∨ y) ∧ (x ∨ ¬y) — fails at x = 0.
    false_qbf = QBF(
        (("A", ("x",)), ("E", ("y",))),
        (((True, "x"), (True, "y")), ((True, "x"), (False, "y"))),
    )
    print()
    print("QBF:      ∀x ∃y. (x ∨ y) ∧ (x ∨ ¬y)")
    verdict = evaluate_qbf_via_machines(false_qbf)
    print(f"machine-pipeline verdict: {verdict}")
    assert verdict == false_qbf.evaluate() is False

    # One level up: ∃x ∀y ∃z — a Σ₃ instance.
    sigma3 = QBF(
        (("E", ("x",)), ("A", ("y",)), ("E", ("z",))),
        (
            ((True, "x"), (True, "y"), (True, "z")),
            ((False, "y"), (False, "z")),
        ),
    )
    print()
    print("QBF:      ∃x ∀y ∃z. (x ∨ y ∨ z) ∧ (¬y ∨ ¬z)   [Σ^p_3]")
    verdict = evaluate_qbf_via_machines(sigma3)
    print(f"machine-pipeline verdict: {verdict}")
    assert verdict == sigma3.evaluate() is True


if __name__ == "__main__":
    main()
