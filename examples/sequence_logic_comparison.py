"""Comparing with Ginsburg-Wang sequence logic (Theorem 6.4).

Sequence logic manipulates lists over an infinite atom universe with
"regular shuffle" predicates.  This example encodes atom sequences
into the fixed alphabet, translates three classic predicates into
unidirectional string formulae, and checks the embedding against the
direct sequence-logic semantics.

Run with:  python examples/sequence_logic_comparison.py
"""

from repro.core.alphabet import BINARY
from repro.core.semantics import check_string_formula
from repro.expressive.sequence_logic import (
    AtomEncoding,
    alternation_predicate,
    concatenation_predicate,
    predicate_to_formula,
    shuffle_predicate,
)

PEOPLE = ("Peter", "Paul", "Mary")


def main() -> None:
    encoding = AtomEncoding(BINARY)
    print("Atom encoding e : U → Σ*:")
    for person in PEOPLE:
        print(f"   e({person}) = {encoding.encode_atom(person)!r}")

    cases = [
        ("concatenation α₁*α₂*", concatenation_predicate(),
         (("Peter",), ("Paul", "Mary")), ("Peter", "Paul", "Mary")),
        ("shuffle (α₁|α₂)*", shuffle_predicate(),
         (("Peter", "Paul"), ("Mary",)), ("Peter", "Mary", "Paul")),
        ("alternation (α₁α₂)*", alternation_predicate(),
         (("Peter", "Peter"), ("Paul", "Paul")),
         ("Peter", "Paul", "Peter", "Paul")),
    ]
    for label, predicate, inputs, output in cases:
        direct = predicate.holds(inputs, output)
        formula = predicate_to_formula(predicate)
        encoded = {
            "x1": encoding.encode_sequence(inputs[0]),
            "x2": encoding.encode_sequence(inputs[1]),
            "x3": encoding.encode_sequence(output),
        }
        via_formula = check_string_formula(formula, encoded)
        assert direct == via_formula
        print(f"{label}:")
        print(f"   inputs  {inputs[0]} , {inputs[1]}")
        print(f"   output  {output}")
        print(f"   holds = {direct}  (sequence logic and alignment calculus agree)")
        print(f"   encoded output: {encoded['x3']!r}")


if __name__ == "__main__":
    main()
