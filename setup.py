"""Legacy setup shim so `pip install -e .` works without wheel/PEP 517.

All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
