"""Experiment T64: the Ginsburg-Wang embedding.

Times the direct sequence-logic semantics against the translated
alignment calculus formula (checked by the model checker and by the
compiled machine), and asserts the three agree — the equivalence claim
of Theorem 6.4 measured.
"""

import pytest

from repro.core.alphabet import BINARY
from repro.core.semantics import check_string_formula
from repro.expressive.sequence_logic import (
    AtomEncoding,
    concatenation_predicate,
    predicate_to_formula,
    shuffle_predicate,
)
from repro.fsa.compile import compile_string_formula
from repro.fsa.simulate import accepts

ATOMS = tuple(f"atom{i}" for i in range(4))


@pytest.fixture(scope="module")
def shuffle_case():
    predicate = shuffle_predicate()
    formula = predicate_to_formula(predicate)
    encoding = AtomEncoding(BINARY)
    s1 = (ATOMS[0], ATOMS[1], ATOMS[2])
    s2 = (ATOMS[3], ATOMS[0])
    out = (ATOMS[0], ATOMS[3], ATOMS[1], ATOMS[0], ATOMS[2])
    env = {
        "x1": encoding.encode_sequence(s1),
        "x2": encoding.encode_sequence(s2),
        "x3": encoding.encode_sequence(out),
    }
    sigma = encoding.full_alphabet()
    compiled = compile_string_formula(formula, sigma)
    return predicate, formula, (s1, s2, out), env, compiled


def test_three_routes_agree(shuffle_case):
    predicate, formula, (s1, s2, out), env, compiled = shuffle_case
    direct = predicate.holds((s1, s2), out)
    checker = check_string_formula(formula, env)
    machine = accepts(
        compiled.fsa, tuple(env[v] for v in compiled.variables)
    )
    assert direct == checker == machine is True


def test_direct_semantics(benchmark, shuffle_case):
    predicate, _, (s1, s2, out), _, _ = shuffle_case
    assert benchmark(predicate.holds, (s1, s2), out)


def test_translated_formula_checker(benchmark, shuffle_case):
    _, formula, _, env, _ = shuffle_case
    assert benchmark(check_string_formula, formula, env)


def test_translated_machine(benchmark, shuffle_case):
    _, _, _, env, compiled = shuffle_case
    ordered = tuple(env[v] for v in compiled.variables)
    assert benchmark(accepts, compiled.fsa, ordered)


def test_concatenation_predicate_agreement():
    predicate = concatenation_predicate()
    formula = predicate_to_formula(predicate)
    encoding = AtomEncoding(BINARY)
    cases = [
        ((ATOMS[:2], ATOMS[2:3]), ATOMS[:3], True),
        ((ATOMS[:2], ATOMS[2:3]), (ATOMS[2], *ATOMS[:2]), False),
    ]
    for (s1, s2), out, expected in cases:
        env = {
            "x1": encoding.encode_sequence(s1),
            "x2": encoding.encode_sequence(s2),
            "x3": encoding.encode_sequence(out),
        }
        assert predicate.holds((s1, s2), out) is expected
        assert check_string_formula(formula, env) is expected
