"""QueryEngine session caching: warm vs. cold evaluation.

The same workload is evaluated through a fresh :class:`QueryEngine`
per run (cold — every Theorem 3.1 compilation, Lemma 3.1
specialization, limit analysis and plan is redone) and through one
long-lived session (warm — all of those are served from the
structural caches).  The equivalence assertion and the ≥5× speedup
assertion make this file the harness row for the PR-1 engine
acceptance criterion.

Run directly (``PYTHONPATH=src python benchmarks/bench_engine_cache.py``)
for a quick cold/warm report, or through pytest-benchmark for calibrated
timings.
"""

import time

from repro.core import shorthands as sh
from repro.core.alphabet import AB
from repro.core.query import Query
from repro.core.syntax import And, exists, lift, rel
from repro.engine import QueryEngine


def _workload() -> list[Query]:
    """Representative mixed workload: selection, join, generation."""
    return [
        Query(
            ("x", "y"),
            And(rel("R1", "x", "y"), lift(sh.prefix_of("x", "y"))),
            AB,
        ),
        Query(
            ("x",),
            exists("y", And(rel("R1", "x", "y"), rel("R2", "y"))),
            AB,
        ),
        Query(
            ("x",),
            exists(
                ["y", "z"],
                And(
                    And(rel("R2", "y"), rel("R2", "z")),
                    lift(sh.concatenation("x", "y", "z")),
                ),
            ),
            AB,
        ),
    ]


def _evaluate_all(session, db, queries):
    return [session.evaluate(query, db) for query in queries]


def _best_of(runs, fn):
    best = float("inf")
    for _ in range(runs):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def test_cold_session(benchmark, ab_database):
    queries = _workload()
    results = benchmark(
        lambda: _evaluate_all(QueryEngine(), ab_database, queries)
    )
    assert all(isinstance(r, frozenset) for r in results)


def test_warm_session(benchmark, ab_database):
    queries = _workload()
    session = QueryEngine()
    _evaluate_all(session, ab_database, queries)  # prime the caches
    results = benchmark(lambda: _evaluate_all(session, ab_database, queries))
    assert all(isinstance(r, frozenset) for r in results)


def test_warm_cache_speedup(ab_database):
    """Acceptance criterion: warm repeated evaluation is ≥5× faster
    than cold, with nonzero compile/specialize/limit cache hits."""
    queries = _workload()
    expected = _evaluate_all(QueryEngine(), ab_database, queries)

    cold = _best_of(
        3, lambda: _evaluate_all(QueryEngine(), ab_database, queries)
    )

    session = QueryEngine()
    assert _evaluate_all(session, ab_database, queries) == expected
    warm = _best_of(3, lambda: _evaluate_all(session, ab_database, queries))
    assert _evaluate_all(session, ab_database, queries) == expected

    caches = session.stats.snapshot()["caches"]
    assert caches["compile"]["hits"] > 0
    assert caches["specialize"]["hits"] > 0
    assert caches["limit"]["hits"] > 0
    assert cold >= 5 * warm, (
        f"warm ({warm * 1e3:.2f} ms) not ≥5× faster than cold "
        f"({cold * 1e3:.2f} ms)"
    )


def main() -> None:
    from repro.workloads import generators

    # Mirrors the ab_database fixture in benchmarks/conftest.py.
    db = generators.example_database(AB, seed=1, size=6, max_length=4)
    queries = _workload()
    cold = _best_of(3, lambda: _evaluate_all(QueryEngine(), db, queries))
    session = QueryEngine()
    _evaluate_all(session, db, queries)
    warm = _best_of(3, lambda: _evaluate_all(session, db, queries))
    print(f"cold: {cold * 1e3:8.2f} ms   (fresh QueryEngine per run)")
    print(f"warm: {warm * 1e3:8.2f} ms   (long-lived session)")
    print(f"speedup: {cold / warm:.1f}x")
    print(session.stats.describe())


if __name__ == "__main__":
    main()
