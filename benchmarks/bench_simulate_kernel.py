"""Compiled simulation kernel vs. the reference Theorem 3.3 search.

The same acceptance workloads — one-way selection machines and a
two-way manifold machine, over synthetic generator rows — run through
the seed dataclass worklist search (``reference_accepts``) and through
the compiled integer kernel (``repro.fsa.kernel``).  The equivalence
assertion and the ≥3× speedup assertion make this file the harness
row for the PR-5 kernel acceptance criterion.

Run directly
(``PYTHONPATH=src python benchmarks/bench_simulate_kernel.py``) for a
quick per-workload report, or through pytest-benchmark for calibrated
timings.
"""

import time

import pytest

from repro.core import shorthands as sh
from repro.core.alphabet import AB, DNA
from repro.fsa.compile import compile_string_formula
from repro.fsa.kernel import kernel_for
from repro.fsa.simulate import reference_accepts
from repro.workloads.generators import (
    manifold_strings,
    uniform_strings,
    with_planted_motif,
)

#: The acceptance-criterion floor: kernel ≥3× over the reference BFS.
SPEEDUP_FLOOR = 3.0


def _workloads():
    """``(name, machine, rows)`` acceptance workloads, generator-fed."""
    eq = compile_string_formula(sh.equals("x", "y"), AB).fsa
    words = uniform_strings(AB, 24, 32, min_length=16, seed=3)
    yield "equality", eq, [
        (word, word if index % 2 else word[::-1])
        for index, word in enumerate(words)
    ]
    occurs = compile_string_formula(sh.occurs_in("x", "y"), DNA).fsa
    haystacks = with_planted_motif(DNA, "gcgc", count=24, max_length=24, seed=5)
    yield "motif", occurs, [("gcgc", haystack) for haystack in haystacks]
    manifold = compile_string_formula(sh.manifold("x", "y"), AB).fsa
    yield "manifold", manifold, [
        (base * 8, base)
        for _, base in manifold_strings(
            AB, count=12, max_base_length=3, max_repeats=1, seed=7
        )
    ]


def _run_reference(fsa, rows):
    return tuple(reference_accepts(fsa, row) for row in rows)


def _run_kernel(fsa, rows):
    return kernel_for(fsa).accepts_batch(rows)


def _best_of(runs, fn):
    best = float("inf")
    for _ in range(runs):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


@pytest.mark.parametrize(
    "name,fsa,rows", list(_workloads()), ids=lambda v: v if isinstance(v, str) else ""
)
def test_reference_workload(benchmark, name, fsa, rows):
    verdicts = benchmark(lambda: _run_reference(fsa, rows))
    assert any(verdicts)


@pytest.mark.parametrize(
    "name,fsa,rows", list(_workloads()), ids=lambda v: v if isinstance(v, str) else ""
)
def test_kernel_workload(benchmark, name, fsa, rows):
    verdicts = benchmark(lambda: _run_kernel(fsa, rows))
    assert any(verdicts)


def test_kernel_speedup_floor():
    """Acceptance criterion: the kernel is ≥3× faster than the seed
    search on every acceptance workload, with identical verdicts."""
    for name, fsa, rows in _workloads():
        expected = _run_reference(fsa, rows)
        assert _run_kernel(fsa, rows) == expected, name
        reference = _best_of(3, lambda: _run_reference(fsa, rows))
        kernel = _best_of(3, lambda: _run_kernel(fsa, rows))
        assert reference >= SPEEDUP_FLOOR * kernel, (
            f"{name}: kernel ({kernel * 1e3:.2f} ms) not ≥{SPEEDUP_FLOOR}× "
            f"faster than reference ({reference * 1e3:.2f} ms)"
        )


def main() -> None:
    for name, fsa, rows in _workloads():
        assert _run_kernel(fsa, rows) == _run_reference(fsa, rows)
        reference = _best_of(3, lambda: _run_reference(fsa, rows))
        kernel = _best_of(3, lambda: _run_kernel(fsa, rows))
        print(
            f"{name:<10} reference: {reference * 1e3:8.2f} ms   "
            f"kernel: {kernel * 1e3:8.2f} ms   "
            f"speedup: {reference / kernel:5.1f}x"
        )


if __name__ == "__main__":
    main()
