"""Acceptance kernels vs. the reference Theorem 3.3 search — and v2 vs v1.

Two benchmark families share this file:

* the PR-5 criterion — one-way selection machines and a two-way
  manifold machine over synthetic generator rows, run through the seed
  dataclass worklist search (``reference_accepts``) and through the
  compiled integer kernel (``repro.fsa.kernel``), gated at ≥3×;
* the kernel-v2 criterion — per-fragment *batch* workloads
  (unidirectional and right-restricted machines on large row batches,
  plus a two-way fallback control) run through the v1 worklist kernel
  and the determinized v2 scan kernel
  (``repro.fsa.determinize``), gated at v2 ≥2× v1 on the
  unidirectional batch and recorded as the ``BENCH_kernel.json``
  trajectory.

Run directly
(``PYTHONPATH=src python benchmarks/bench_simulate_kernel.py``) for a
quick per-workload report, or through pytest-benchmark for calibrated
timings.
"""

import json
import time
from pathlib import Path

import pytest

from repro.core import shorthands as sh
from repro.core.alphabet import AB, DNA, LEFT_END, RIGHT_END
from repro.fsa.compile import compile_string_formula
from repro.fsa.determinize import classify_fragment
from repro.fsa.kernel import kernel_for
from repro.fsa.machine import make_fsa
from repro.fsa.simulate import reference_accepts
from repro.workloads.generators import (
    manifold_strings,
    uniform_strings,
    with_planted_motif,
)

#: The acceptance-criterion floor: kernel ≥3× over the reference BFS.
SPEEDUP_FLOOR = 3.0

#: The kernel-v2 criterion floor: the determinized scan ≥2× the v1
#: worklist kernel on the unidirectional batch workload.
V2_SPEEDUP_FLOOR = 2.0

#: Where the v1-vs-v2 trajectory is recorded for the ROADMAP.
RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_kernel.json"


def _workloads():
    """``(name, machine, rows)`` acceptance workloads, generator-fed."""
    eq = compile_string_formula(sh.equals("x", "y"), AB).fsa
    words = uniform_strings(AB, 24, 32, min_length=16, seed=3)
    yield "equality", eq, [
        (word, word if index % 2 else word[::-1])
        for index, word in enumerate(words)
    ]
    occurs = compile_string_formula(sh.occurs_in("x", "y"), DNA).fsa
    haystacks = with_planted_motif(DNA, "gcgc", count=24, max_length=24, seed=5)
    yield "motif", occurs, [("gcgc", haystack) for haystack in haystacks]
    manifold = compile_string_formula(sh.manifold("x", "y"), AB).fsa
    yield "manifold", manifold, [
        (base * 8, base)
        for _, base in manifold_strings(
            AB, count=12, max_base_length=3, max_repeats=1, seed=7
        )
    ]


def _run_reference(fsa, rows):
    return tuple(reference_accepts(fsa, row) for row in rows)


def _run_kernel(fsa, rows):
    return kernel_for(fsa).accepts_batch(rows)


def _best_of(runs, fn):
    best = float("inf")
    for _ in range(runs):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


@pytest.mark.parametrize(
    "name,fsa,rows", list(_workloads()), ids=lambda v: v if isinstance(v, str) else ""
)
def test_reference_workload(benchmark, name, fsa, rows):
    verdicts = benchmark(lambda: _run_reference(fsa, rows))
    assert any(verdicts)


@pytest.mark.parametrize(
    "name,fsa,rows", list(_workloads()), ids=lambda v: v if isinstance(v, str) else ""
)
def test_kernel_workload(benchmark, name, fsa, rows):
    verdicts = benchmark(lambda: _run_kernel(fsa, rows))
    assert any(verdicts)


def test_kernel_speedup_floor():
    """Acceptance criterion: the kernel is ≥3× faster than the seed
    search on every acceptance workload, with identical verdicts."""
    for name, fsa, rows in _workloads():
        expected = _run_reference(fsa, rows)
        assert _run_kernel(fsa, rows) == expected, name
        reference = _best_of(3, lambda: _run_reference(fsa, rows))
        kernel = _best_of(3, lambda: _run_kernel(fsa, rows))
        assert reference >= SPEEDUP_FLOOR * kernel, (
            f"{name}: kernel ({kernel * 1e3:.2f} ms) not ≥{SPEEDUP_FLOOR}× "
            f"faster than reference ({reference * 1e3:.2f} ms)"
        )


# -- kernel v2: per-fragment batch workloads ---------------------------


def _contains_ab_machine():
    """A nondeterministic unidirectional matcher (contains ``ab``)."""
    return make_fsa(
        1,
        AB,
        "s",
        ["f"],
        [
            ("s", (LEFT_END,), "scan", (+1,)),
            ("scan", ("a",), "scan", (+1,)),
            ("scan", ("b",), "scan", (+1,)),
            ("scan", ("a",), "saw_a", (+1,)),
            ("saw_a", ("a",), "saw_a", (+1,)),
            ("saw_a", ("b",), "win", (+1,)),
            ("win", ("a",), "win", (+1,)),
            ("win", ("b",), "win", (+1,)),
            ("win", (RIGHT_END,), "f", (0,)),
        ],
    )


def _batch_workloads():
    """``(name, fragment, machine, rows)`` per-fragment batch workloads.

    One workload per fragment tier — unidirectional (arity 1),
    right-restricted (lockstep arity 2) — plus a two-way machine as
    the fallback control: there v2 must transparently equal v1.
    """
    unidirectional = _contains_ab_machine()
    yield "unidirectional-batch", "unidirectional", unidirectional, [
        (word,)
        for word in uniform_strings(AB, 512, 64, min_length=32, seed=3)
    ]
    eq = compile_string_formula(sh.equals("x", "y"), AB).fsa
    words = list(uniform_strings(AB, 256, 48, min_length=24, seed=5))
    yield "right-restricted-batch", "right-restricted", eq, [
        (word, word if index % 2 else word[::-1])
        for index, word in enumerate(words)
    ]
    manifold = compile_string_formula(sh.manifold("x", "y"), AB).fsa
    yield "two-way-fallback", None, manifold, [
        (base * 8, base)
        for _, base in manifold_strings(
            AB, count=12, max_base_length=3, max_repeats=1, seed=7
        )
    ]


def _run_mode(fsa, rows, mode):
    return kernel_for(fsa, mode).accepts_batch(rows)


@pytest.mark.parametrize(
    "name,fragment,fsa,rows",
    list(_batch_workloads()),
    ids=lambda v: v if isinstance(v, str) else "",
)
def test_v2_batch_workload(benchmark, name, fragment, fsa, rows):
    assert classify_fragment(fsa) == fragment
    verdicts = benchmark(lambda: _run_mode(fsa, rows, "v2"))
    assert any(verdicts)


def _v2_measurements():
    """The per-workload v1/v2 timings backing the gate and the report."""
    results = []
    for name, fragment, fsa, rows in _batch_workloads():
        expected = _run_mode(fsa, rows, "v1")
        assert _run_mode(fsa, rows, "v2") == expected, name
        assert _run_mode(fsa, rows, "auto") == expected, name
        v1 = _best_of(3, lambda: _run_mode(fsa, rows, "v1"))
        v2 = _best_of(3, lambda: _run_mode(fsa, rows, "v2"))
        results.append(
            {
                "workload": name,
                "fragment": fragment,
                "rows": len(rows),
                "v1_seconds": round(v1, 4),
                "v2_seconds": round(v2, 4),
                "speedup": round(v1 / v2, 2),
            }
        )
    return results


def test_kernel_v2_speedup_floor():
    """Kernel-v2 acceptance criterion: the determinized scan is ≥2×
    faster than the v1 worklist kernel on the unidirectional batch
    workload (identical verdicts everywhere, v1 fallback untaxed);
    the measured trajectory is recorded in ``BENCH_kernel.json``."""
    results = _v2_measurements()
    RESULTS_PATH.write_text(
        json.dumps(
            {"floor": V2_SPEEDUP_FLOOR, "workloads": results}, indent=2
        )
        + "\n"
    )
    by_name = {entry["workload"]: entry for entry in results}
    gated = by_name["unidirectional-batch"]
    assert gated["v1_seconds"] >= V2_SPEEDUP_FLOOR * gated["v2_seconds"], (
        f"unidirectional batch: v2 ({gated['v2_seconds'] * 1e3:.2f} ms) "
        f"not ≥{V2_SPEEDUP_FLOOR}× faster than v1 "
        f"({gated['v1_seconds'] * 1e3:.2f} ms)"
    )


def main() -> None:
    for name, fsa, rows in _workloads():
        assert _run_kernel(fsa, rows) == _run_reference(fsa, rows)
        reference = _best_of(3, lambda: _run_reference(fsa, rows))
        kernel = _best_of(3, lambda: _run_kernel(fsa, rows))
        print(
            f"{name:<10} reference: {reference * 1e3:8.2f} ms   "
            f"kernel: {kernel * 1e3:8.2f} ms   "
            f"speedup: {reference / kernel:5.1f}x"
        )
    for entry in _v2_measurements():
        print(
            f"{entry['workload']:<24} v1: {entry['v1_seconds'] * 1e3:8.2f} ms   "
            f"v2: {entry['v2_seconds'] * 1e3:8.2f} ms   "
            f"speedup: {entry['speedup']:5.1f}x"
        )


if __name__ == "__main__":
    main()
