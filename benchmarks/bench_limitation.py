"""Experiment T52: the limitation decision and its bound shapes.

Times the Theorem 5.2 decision procedure on unidirectional and
right-restricted machines, and reproduces the bound-attainment claims
with the paper's witness machines: ``B_s`` reaches the linear bound
``s·ρ(n)`` exactly; ``B'_s`` grows with the product of its two input
dimensions (the quadratic shape).
"""

import pytest

from repro.core import shorthands as sh
from repro.core.alphabet import AB
from repro.fsa.compile import compile_string_formula
from repro.fsa.generate import accepted_tuples
from repro.safety.limitation import decide_limitation, formula_limitation
from repro.safety.witnesses import linear_bound_witness, quadratic_bound_witness


class TestDecisionTiming:
    def test_unidirectional_decision(self, benchmark):
        fsa = compile_string_formula(sh.concatenation("x", "y", "z"), AB).fsa
        report = benchmark(decide_limitation, fsa, [1, 2], [0])
        assert report.limited

    def test_right_restricted_decision(self, benchmark):
        fsa = compile_string_formula(sh.manifold("x", "y"), AB).fsa
        report = benchmark(decide_limitation, fsa, [0], [1])
        assert report.limited
        assert report.limit.quadratic

    def test_violation_detection(self, benchmark):
        report = benchmark(
            formula_limitation, sh.manifold("y", "x"), ["x"], ["y"], AB
        )
        assert not report.limited


class TestLinearBoundAttainment:
    @pytest.mark.parametrize("s", [1, 2, 4])
    def test_bs_reaches_s_rho(self, s):
        machine = linear_bound_witness(s, 1, AB)
        for n in (0, 2, 4):
            outputs = accepted_tuples(
                machine, max_length=s * (n + 1) + 2, fixed={0: "a" * n}
            )
            lengths = {len(o) for (o,) in outputs}
            assert lengths == {s * (n + 1)}, (s, n)

    def test_certified_bound_dominates_attained(self):
        machine = linear_bound_witness(3, 1, AB)
        report = decide_limitation(machine, [0], [1])
        for n in (0, 3, 6):
            assert report.bound(n) >= 3 * (n + 1)


class TestQuadraticBoundAttainment:
    def test_bprime_grows_with_the_product(self):
        machine = quadratic_bound_witness(2, 2, AB)

        def longest(w1: str, wound: str) -> int:
            outputs = accepted_tuples(
                machine, max_length=128, fixed={0: w1, 1: wound}
            )
            return max(len(o) for (o,) in outputs)

        table = {
            (m, n): longest("a" * m, "a" * n)
            for m in (1, 3)
            for n in (1, 4)
        }
        # Growth in each dimension alone is mild; together it compounds.
        gain_read = table[(3, 1)] - table[(1, 1)]
        gain_wound = table[(1, 4)] - table[(1, 1)]
        gain_both = table[(3, 4)] - table[(1, 1)]
        assert gain_both > gain_read + gain_wound

    def test_generation_timing(self, benchmark):
        machine = quadratic_bound_witness(2, 2, AB)
        outputs = benchmark(
            accepted_tuples, machine, 96, {0: "aa", 1: "aaa"}
        )
        assert outputs


class TestCrossingGrowth:
    """The paper's remark that |A″| can grow exponentially in |A|."""

    def test_crossing_size_grows_with_machine(self):
        from repro.core import shorthands as sh
        from repro.core.alphabet import AB
        from repro.safety.crossing import build_crossing_automaton

        from repro.core.alphabet import Alphabet

        abc = Alphabet("abc")
        sizes = {}
        for name, formula, sigma in (
            ("manifold", sh.manifold("x", "y"), AB),
            ("anbncn", sh.anbncn_string_part("x", "y"), abc),
            ("reverse", sh.reverse_of("x", "y"), AB),
        ):
            compiled = compile_string_formula(formula, sigma)
            b = compiled.tape_of("y")
            crossing = build_crossing_automaton(
                compiled.fsa,
                b,
                {compiled.tape_of("x")},
                {b},
            )
            sizes[name] = (compiled.fsa.size, crossing.size())
        # |A″| is recorded for EXPERIMENTS.md; it varies widely across
        # machines of comparable size — the exponential-potential shape.
        assert all(arcs > 0 for _, arcs in sizes.values())

    def test_crossing_construction_timing(self, benchmark):
        from repro.core import shorthands as sh
        from repro.core.alphabet import AB
        from repro.safety.crossing import build_crossing_automaton

        compiled = compile_string_formula(sh.reverse_of("x", "y"), AB)
        b = compiled.tape_of("y")
        crossing = benchmark(
            build_crossing_automaton,
            compiled.fsa,
            b,
            {compiled.tape_of("x")},
            {b},
        )
        assert crossing.size() > 0
