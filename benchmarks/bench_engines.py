"""Experiment X2: engine ablation — naive vs planner vs algebra.

The same Example 2 and Example 3 queries evaluated by the three
engines.  Shape claim: all agree; the planner dominates once queries
generate strings, because it never materializes ``Σ^{<=l}``.
"""

import pytest

from repro.core import shorthands as sh
from repro.core.alphabet import AB
from repro.core.query import Query
from repro.core.syntax import And, exists, lift, rel

LENGTH = 4


@pytest.fixture(scope="module")
def selection_query():
    return Query(
        ("x", "y"), And(rel("R1", "x", "y"), lift(sh.equals("x", "y"))), AB
    )


@pytest.fixture(scope="module")
def generation_query():
    return Query(
        ("x",),
        exists(
            ["y", "z"],
            And(
                And(rel("R2", "y"), rel("R2", "z")),
                lift(sh.concatenation("x", "y", "z")),
            ),
        ),
        AB,
    )


def test_engines_agree(ab_database, selection_query, generation_query):
    for query, length in ((selection_query, LENGTH), (generation_query, 5)):
        naive = query.evaluate(ab_database, length=length, engine="naive")
        planner = query.evaluate(ab_database, length=length, engine="planner")
        algebra = query.evaluate(ab_database, length=length, engine="algebra")
        assert naive == planner == algebra


@pytest.mark.parametrize("engine", ["naive", "planner", "algebra"])
def test_selection_engines(benchmark, ab_database, selection_query, engine):
    result = benchmark.pedantic(
        selection_query.evaluate,
        args=(ab_database,),
        kwargs={"length": LENGTH, "engine": engine},
        rounds=3,
        iterations=1,
    )
    assert result == selection_query.evaluate(
        ab_database, length=LENGTH, engine="planner"
    )


@pytest.mark.parametrize("engine", ["naive", "planner", "algebra"])
def test_generation_engines(benchmark, ab_database, generation_query, engine):
    # The naive engine enumerates Σ^{<=l} per quantifier; keep l small
    # enough that the losing engine still terminates (the ablation's
    # point is the gap, visible already at l=5).
    length = 5 if engine == "naive" else 8
    result = benchmark.pedantic(
        generation_query.evaluate,
        args=(ab_database,),
        kwargs={"length": length, "engine": engine},
        rounds=2,
        iterations=1,
    )
    assert result == generation_query.evaluate(
        ab_database, length=length, engine="planner"
    )
