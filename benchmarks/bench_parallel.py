"""Sharded parallel evaluation: 1 worker vs N workers.

The heaviest workload in the harness is brute-force candidate-space
filtering: a two-variable selection over an explicit ``Σ^{<=l}``
domain of the DNA alphabet, giving ``|domain|²`` candidates sharded by
mixed-radix index ranges across the process pool.  The file provides

* pytest-benchmark rows for the single- and multi-worker engines on a
  moderate candidate space (also the CI smoke path), and
* the acceptance assertion — ≥1.5× speedup at 4 workers on the heavy
  candidate space — gated on the host actually having 4 CPUs, since a
  process pool cannot beat sequential execution on a single core.

Every run cross-checks the parallel answer set against the sequential
one; a benchmark that got faster by being wrong must fail.

Run directly (``PYTHONPATH=src python benchmarks/bench_parallel.py``)
for a quick report, or through pytest-benchmark for calibrated
timings.
"""

import os
import time

from repro.core import shorthands as sh
from repro.core.alphabet import DNA
from repro.core.query import Query
from repro.core.syntax import And, lift, rel
from repro.engine import ParallelEngine, QueryEngine

#: Acceptance criterion: multi-worker speedup on the heavy workload.
SPEEDUP_WORKERS = 4
SPEEDUP_FLOOR = 1.5

#: Truncation bounds for the two workload sizes (|Σ^{<=l}|² candidates
#: over DNA: 4 → ~116k, 5 → ~1.86M).
MODERATE_BOUND = 4
HEAVY_BOUND = 5


def _query() -> Query:
    return Query(
        ("x", "y"),
        And(rel("R1", "x", "y"), lift(sh.prefix_of("y", "x"))),
        DNA,
    )


def _evaluate(session, db, workers, bound):
    engine = ParallelEngine(workers=workers, min_parallel_items=1)
    domain = session.domain_for(DNA, bound)
    answers = session.evaluate(_query(), db, domain=domain, engine=engine)
    return answers, engine.last_report


def _best_of(runs, fn):
    best = float("inf")
    for _ in range(runs):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def test_single_worker(benchmark, dna_database):
    session = QueryEngine()
    answers, report = benchmark(
        lambda: _evaluate(session, dna_database, 1, MODERATE_BOUND)
    )
    assert report.mode == "sequential"
    assert isinstance(answers, frozenset)


def test_multi_worker(benchmark, dna_database):
    session = QueryEngine()
    answers, report = benchmark(
        lambda: _evaluate(
            session, dna_database, SPEEDUP_WORKERS, MODERATE_BOUND
        )
    )
    assert report.mode == "parallel"
    sequential, _ = _evaluate(session, dna_database, 1, MODERATE_BOUND)
    assert answers == sequential


def test_parallel_speedup(dna_database):
    """Acceptance criterion: ≥1.5× at 4 workers on the heavy workload.

    Requires 4 real CPUs — a pool of 4 processes multiplexed onto one
    core can only lose to the sequential path, so the assertion is
    meaningless (and guaranteed to fail) on smaller hosts.
    """
    import pytest

    cpus = os.cpu_count() or 1
    if cpus < SPEEDUP_WORKERS:
        pytest.skip(
            f"speedup needs >= {SPEEDUP_WORKERS} CPUs, host has {cpus}"
        )
    session = QueryEngine()
    sequential, _ = _evaluate(session, dna_database, 1, HEAVY_BOUND)
    parallel, report = _evaluate(
        session, dna_database, SPEEDUP_WORKERS, HEAVY_BOUND
    )
    assert parallel == sequential
    assert report.mode == "parallel"

    single = _best_of(
        2, lambda: _evaluate(session, dna_database, 1, HEAVY_BOUND)
    )
    multi = _best_of(
        2,
        lambda: _evaluate(
            session, dna_database, SPEEDUP_WORKERS, HEAVY_BOUND
        ),
    )
    speedup = single / multi
    assert speedup >= SPEEDUP_FLOOR, (
        f"{SPEEDUP_WORKERS}-worker speedup {speedup:.2f}x below "
        f"{SPEEDUP_FLOOR}x (1w {single * 1e3:.0f} ms, "
        f"{SPEEDUP_WORKERS}w {multi * 1e3:.0f} ms)"
    )


def main() -> None:
    from repro.core.database import Database
    from repro.workloads import generators

    # Mirrors the dna_database fixture in benchmarks/conftest.py.
    fragments = generators.with_planted_motif(
        DNA, motif="gcgc", count=12, max_length=5, seed=2
    )
    pairs = generators.manifold_strings(
        DNA, count=6, max_base_length=2, max_repeats=3, seed=3
    )
    db = Database(
        DNA,
        {"R1": [tuple(p) for p in pairs], "R2": [(s,) for s in fragments]},
    )
    session = QueryEngine()
    bound = HEAVY_BOUND
    single = _best_of(2, lambda: _evaluate(session, db, 1, bound))
    answers, report = _evaluate(session, db, SPEEDUP_WORKERS, bound)
    multi = _best_of(
        2, lambda: _evaluate(session, db, SPEEDUP_WORKERS, bound)
    )
    print(f"1 worker:  {single * 1e3:8.0f} ms")
    print(f"{SPEEDUP_WORKERS} workers: {multi * 1e3:8.0f} ms")
    print(f"speedup:   {single / multi:.2f}x  ({os.cpu_count()} CPUs)")
    print(report.describe())


if __name__ == "__main__":
    main()
