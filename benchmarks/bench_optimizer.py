"""Optimizer speedup: planned disjunctions must beat the naive fallback.

Before the :mod:`repro.ir` layer, any disjunctive formula — the
paper's ``¬(¬φ ∧ ¬ψ)`` encoding — fell through every planner to the
naive candidate-space enumeration, which is exponential in the head
arity.  The normalizer now splits such formulae into a union of
conjunctive branches whose joins touch only database rows.

The acceptance gate (:func:`test_optimized_at_least_2x_faster`)
requires the optimized plan route to evaluate the disjunctive workload
at least :data:`SPEEDUP_FLOOR`× faster than the naive fallback it
replaces, with identical answers.  pytest-benchmark rows time both
routes; run the module directly
(``PYTHONPATH=src python benchmarks/bench_optimizer.py``) for a quick
report.
"""

import time

import pytest

from repro.core.alphabet import DNA
from repro.core.database import Database
from repro.core.query import Query
from repro.core.semantics import evaluate_naive
from repro.core.syntax import And, exists, f_or, rel
from repro.engine import QueryEngine
from repro.workloads import generators

#: Acceptance criterion: the optimized plan route must be at least
#: this many times faster than the naive fallback on the disjunctive
#: workload.
SPEEDUP_FLOOR = 2.0

#: Truncation bound of the workload; the naive route enumerates
#: ``|Σ^≤BOUND|^2`` head candidates at this setting.  The workload
#: database keeps every string within the bound, so the truncated
#: naive semantics and the join-based plans agree exactly.
BOUND = 3


def _database() -> Database:
    """A DNA database whose strings all fit within ``BOUND``."""
    strings = generators.uniform_strings(
        DNA, count=40, max_length=BOUND, min_length=1, seed=11
    )
    pairs = list(zip(strings[:20], strings[20:]))
    singles = generators.uniform_strings(
        DNA, count=14, max_length=BOUND, min_length=1, seed=13
    )
    return Database(
        DNA,
        {"R1": pairs, "R2": [(s,) for s in singles]},
    )


@pytest.fixture(scope="module")
def workload_database() -> Database:
    return _database()


def _query() -> Query:
    """A two-variable disjunction with a nested ∃ — the shape the old
    planner rejected wholesale."""
    return Query(
        ("x", "y"),
        f_or(
            And(rel("R1", "x", "y"), rel("R2", "y")),
            And(
                rel("R2", "x"),
                exists("z", And(rel("R1", "y", "z"), rel("R2", "z"))),
            ),
        ),
        DNA,
    )


def _run_naive(db):
    """The pre-IR fallback: brute-force enumeration of Σ^≤BOUND²."""
    query = _query()
    domain = tuple(DNA.strings(BOUND))
    return evaluate_naive(query.formula, query.head, db, domain)


def _run_optimized(db):
    """The plan route: normalized union of cost-ordered join branches."""
    session = QueryEngine()
    return session.evaluate(_query(), db, length=BOUND, engine="planner")


def _best_of(runs, fn):
    best = float("inf")
    for _ in range(runs):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def test_answers_identical(workload_database):
    assert _run_optimized(workload_database) == _run_naive(workload_database)


def test_naive_fallback(benchmark, workload_database):
    answers = benchmark(lambda: _run_naive(workload_database))
    assert isinstance(answers, frozenset)


def test_optimized_plan(benchmark, workload_database):
    answers = benchmark(lambda: _run_optimized(workload_database))
    assert isinstance(answers, frozenset)


def test_optimized_at_least_2x_faster(workload_database):
    """Acceptance criterion: plan route ≥2× faster than the fallback."""
    assert _run_optimized(workload_database) == _run_naive(workload_database)
    naive = _best_of(3, lambda: _run_naive(workload_database))
    optimized = _best_of(3, lambda: _run_optimized(workload_database))
    speedup = naive / optimized
    assert speedup >= SPEEDUP_FLOOR, (
        f"optimized route only {speedup:.1f}× faster than the naive "
        f"fallback (naive {naive * 1e3:.1f} ms, optimized "
        f"{optimized * 1e3:.1f} ms); floor is {SPEEDUP_FLOOR:.0f}×"
    )


def main() -> None:
    db = _database()
    assert _run_optimized(db) == _run_naive(db)
    naive = _best_of(3, lambda: _run_naive(db))
    optimized = _best_of(3, lambda: _run_optimized(db))
    print(f"naive fallback:  {naive * 1e3:8.1f} ms")
    print(f"optimized plan:  {optimized * 1e3:8.1f} ms")
    print(f"speedup:         {naive / optimized:8.1f}× (floor {SPEEDUP_FLOOR:.0f}×)")


if __name__ == "__main__":
    main()
