"""The query daemon under concurrent load: warm caches vs cold sessions.

Eight concurrent clients replay a mixed workload (relational scans, a
join, an existential join, and a compile-heavy copy query) two ways:

* **cold baseline** — what the pre-daemon world did: every request is
  a one-shot process that pays interpreter start, imports, a fresh
  ``QueryEngine()`` session, and a first-touch compile of its
  Theorem 3.1 machines.  (A fresh session *inside* one process is not
  honestly cold: ``repro.fsa.compile`` and the regex NFA cache are
  process-global, so only a new process starts from nothing.)
* **warm daemon** — the same requests through ``repro.service``,
  where the session pool multiplexes all clients onto one shared
  session and only the first touch of each shape compiles.

The equivalence assertion checks the daemon's wire rows are
byte-identical to direct evaluation; the latency gate asserts the
warm-daemon p50 beats the cold baseline p50 by ≥3× — the
cache-sharing acceptance criterion for the service layer.  Measured
numbers (QPS, p50/p99 per mode) go to ``BENCH_service.json``.

Run directly (``PYTHONPATH=src python benchmarks/bench_service.py``)
for a quick report, or through pytest for the gated assertions.
"""

import json
import subprocess
import sys
import threading
import time
from pathlib import Path

from repro.core.alphabet import AB
from repro.core.database import Database
from repro.core.parser import parse_formula
from repro.core.query import Query
from repro.engine import QueryEngine
from repro.service import ServiceClient, serve_in_thread
from repro.service.protocol import rows_to_wire

#: The acceptance-criterion floor: warm daemon p50 ≥3× under cold p50.
SPEEDUP_FLOOR = 3.0

#: Concurrent clients, per the acceptance criterion.
CLIENTS = 8

#: Requests each client issues per mode (shapes cycled round-robin).
REQUESTS_PER_CLIENT = 6

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_PATH = REPO_ROOT / "BENCH_service.json"

#: ``(formula, head, length)`` — relational scans, a join, and a
#: lifted copy query whose machine compile dominates its cold cost.
WORKLOAD = [
    ("R2(x)", ("x",), 3),
    ("R1(x, y)", ("x", "y"), 3),
    ("exists y: R1(x, y) & R2(x)", ("x",), 3),
    (
        "exists y: R2(y) & ([x,y]l(x = y))* . [x,y]l(x = y = eps)",
        ("x",),
        3,
    ),
]

#: The one-shot evaluation a pre-daemon caller pays per query.
_COLD_SCRIPT = """
import sys
from repro.core.alphabet import AB
from repro.core.database import Database
from repro.core.parser import parse_formula
from repro.core.query import Query
from repro.engine import QueryEngine

formula, length = sys.argv[1], int(sys.argv[2])
head = tuple(sys.argv[3].split(","))
db = Database(
    AB,
    {
        "R1": [("a", "ab"), ("b", "ba"), ("ab", "a")],
        "R2": [("a",), ("b",), ("ab",)],
    },
)
query = Query(head, parse_formula(formula), AB)
QueryEngine().evaluate(query, db, length=length)
"""

_STATE: dict = {}


def _database() -> Database:
    if "db" not in _STATE:
        _STATE["db"] = Database(
            AB,
            {
                "R1": [("a", "ab"), ("b", "ba"), ("ab", "a")],
                "R2": [("a",), ("b",), ("ab",)],
            },
        )
    return _STATE["db"]


def _queries():
    return [
        (Query(tuple(head), parse_formula(formula), AB), formula, head, length)
        for formula, head, length in WORKLOAD
    ]


def _percentile(samples, fraction):
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def _drive(worker, clients=CLIENTS):
    """Run ``worker(client_index, record)`` on N threads; collect latencies."""
    latencies: list[float] = []
    lock = threading.Lock()
    errors: list[BaseException] = []

    def record(seconds: float) -> None:
        with lock:
            latencies.append(seconds)

    def run(index: int) -> None:
        try:
            worker(index, record)
        except BaseException as error:  # pragma: no cover - surfaced below
            errors.append(error)

    threads = [
        threading.Thread(target=run, args=(index,)) for index in range(clients)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    if errors:
        raise errors[0]
    return latencies, wall


def _run_cold_baseline():
    """One-shot process per request, 8 concurrent clients."""
    src = str(REPO_ROOT / "src")

    def worker(index, record):
        for step in range(REQUESTS_PER_CLIENT):
            formula, head, length = WORKLOAD[(index + step) % len(WORKLOAD)]
            started = time.perf_counter()
            subprocess.run(
                [
                    sys.executable, "-c", _COLD_SCRIPT,
                    formula, str(length), ",".join(head),
                ],
                check=True,
                env={"PYTHONPATH": src, "PATH": "/usr/bin:/bin"},
                capture_output=True,
            )
            record(time.perf_counter() - started)

    return _drive(worker)


def _run_warm_service(handle):
    """The daemon after one warmup pass over every shape."""
    with ServiceClient(*handle.address) as warmer:
        for formula, head, length in WORKLOAD:
            warmer.query(formula, list(head), length=length)

    def worker(index, record):
        with ServiceClient(*handle.address) as client:
            for step in range(REQUESTS_PER_CLIENT):
                formula, head, length = WORKLOAD[
                    (index + step) % len(WORKLOAD)
                ]
                started = time.perf_counter()
                client.query(formula, list(head), length=length)
                record(time.perf_counter() - started)

    return _drive(worker)


def _check_equivalence(handle):
    """Daemon rows must be byte-identical to direct evaluation."""
    db = _database()
    with ServiceClient(*handle.address) as client:
        for query, formula, head, length in _queries():
            direct = QueryEngine().evaluate(query, db, length=length)
            remote = client.query(formula, list(head), length=length)
            assert json.dumps(rows_to_wire(direct)) == json.dumps(
                [list(row) for row in remote]
            ), f"daemon and direct answers diverge on {formula!r}"


def _measure():
    if "results" in _STATE:
        return _STATE["results"]
    handle = serve_in_thread(_database(), pool_size=CLIENTS)
    try:
        _check_equivalence(handle)
        cold, cold_wall = _run_cold_baseline()
        warm, warm_wall = _run_warm_service(handle)
    finally:
        handle.stop()
    total = CLIENTS * REQUESTS_PER_CLIENT
    _STATE["results"] = {
        "workload": "mixed-scan-join-generation",
        "clients": CLIENTS,
        "requests_per_mode": total,
        "cold": {
            "p50_ms": round(_percentile(cold, 0.50) * 1e3, 3),
            "p99_ms": round(_percentile(cold, 0.99) * 1e3, 3),
            "qps": round(total / cold_wall, 1),
        },
        "warm": {
            "p50_ms": round(_percentile(warm, 0.50) * 1e3, 3),
            "p99_ms": round(_percentile(warm, 0.99) * 1e3, 3),
            "qps": round(total / warm_wall, 1),
        },
        "p50_speedup": round(
            _percentile(cold, 0.50) / _percentile(warm, 0.50), 2
        ),
        "floor": SPEEDUP_FLOOR,
    }
    return _STATE["results"]


def test_service_answers_are_byte_identical():
    """The daemon returns exactly what direct evaluation returns."""
    handle = serve_in_thread(_database())
    try:
        _check_equivalence(handle)
    finally:
        handle.stop()


def test_service_warm_latency_floor():
    """Acceptance criterion: warm p50 ≥3× better than the cold
    session-per-request baseline at 8 concurrent clients; the measured
    numbers go to BENCH_service.json."""
    results = _measure()
    RESULTS_PATH.write_text(json.dumps(results, indent=2) + "\n")
    assert results["p50_speedup"] >= SPEEDUP_FLOOR, (
        f"warm daemon p50 {results['warm']['p50_ms']} ms not "
        f"≥{SPEEDUP_FLOOR}× better than cold baseline p50 "
        f"{results['cold']['p50_ms']} ms"
    )


def main() -> None:
    results = _measure()
    RESULTS_PATH.write_text(json.dumps(results, indent=2) + "\n")
    cold, warm = results["cold"], results["warm"]
    print(
        f"clients: {results['clients']}   "
        f"requests/mode: {results['requests_per_mode']}"
    )
    print(
        f"cold:  p50 {cold['p50_ms']:8.2f} ms   p99 {cold['p99_ms']:8.2f} ms"
        f"   {cold['qps']:7.1f} qps"
    )
    print(
        f"warm:  p50 {warm['p50_ms']:8.2f} ms   p99 {warm['p99_ms']:8.2f} ms"
        f"   {warm['qps']:7.1f} qps"
    )
    print(f"p50 speedup: {results['p50_speedup']:.1f}x "
          f"(floor {results['floor']}x)")


if __name__ == "__main__":
    main()
