"""Experiment L31: Lemma 3.1 specialization cost.

The lemma promises an ``l``-FSA of size polynomial in
``|A| · Π(|uᵢ| + 2)``.  The benchmark times the construction for
growing constants and asserts the unpruned product meets the stated
size exactly.
"""

import pytest

from repro.core import shorthands as sh
from repro.core.alphabet import AB
from repro.fsa.compile import compile_string_formula
from repro.fsa.specialize import specialize


@pytest.fixture(scope="module")
def machine():
    return compile_string_formula(sh.concatenation("x", "y", "z"), AB).fsa


@pytest.mark.parametrize("length", [2, 4, 8, 16])
def test_specialization_scaling(benchmark, machine, length):
    constant = "ab" * (length // 2)
    fixed = benchmark(specialize, machine, {1: constant})
    assert fixed.arity == 2


@pytest.mark.parametrize("length", [2, 4, 8])
def test_unpruned_size_matches_lemma(machine, length):
    constant = "a" * length
    full = specialize(machine, {1: constant}, prune=False)
    assert len(full.states) == len(machine.states) * (length + 2)


def test_double_specialization(benchmark, machine):
    def run():
        once = specialize(machine, {1: "ab"})
        return specialize(once, {1: "ba"})  # tape 2 shifted to index 1

    result = benchmark(run)
    assert result.arity == 1
