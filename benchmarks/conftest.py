"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one experiment of EXPERIMENTS.md; the
fixtures provide deterministic workloads so runs are comparable.
"""

import pytest

from repro.core.alphabet import AB, DNA
from repro.core.database import Database
from repro.workloads import generators


@pytest.fixture(scope="session")
def ab_database() -> Database:
    """A small two-relation database over {a, b}."""
    return generators.example_database(AB, seed=1, size=6, max_length=4)


@pytest.fixture(scope="session")
def dna_database() -> Database:
    """A DNA-alphabet database with planted motifs."""
    fragments = generators.with_planted_motif(
        DNA, motif="gcgc", count=12, max_length=5, seed=2
    )
    pairs = generators.manifold_strings(
        DNA, count=6, max_base_length=2, max_repeats=3, seed=3
    )
    return Database(
        DNA,
        {"R1": [tuple(p) for p in pairs], "R2": [(s,) for s in fragments]},
    )
