"""Shared fixtures and reporting helpers for the benchmark harness.

Every benchmark regenerates one experiment of EXPERIMENTS.md; the
fixtures provide deterministic workloads so runs are comparable.
:func:`byte_accounting` is the shared size report for compressed
workloads — benchmarks that store relations behind a compressing
backend record *both* expanded and stored bytes, so a "processed N
bytes" claim in a ``BENCH_*.json`` is always explicit about which N
it means.
"""

import pytest

from repro.core.alphabet import AB, DNA
from repro.core.database import Database
from repro.workloads import generators


def byte_accounting(storages) -> dict:
    """Expanded vs. stored bytes over named relation storages.

    Args:
        storages: ``(name, storage)`` pairs (any object with the
            :class:`~repro.storage.RelationStorage` ``stats()`` hook).

    Returns:
        A JSON-ready dict: per-relation and total ``expanded_chars``
        (the logical string bytes a scan-based evaluator would touch),
        ``stored_chars`` (what the backend actually holds — grammar
        rules for SLP columns, identical to expanded for plain
        backends) and the resulting ``compression_ratio``.
    """
    relations = []
    total_expanded = 0
    total_stored = 0
    for name, storage in storages:
        stats = storage.stats()
        expanded = sum(column.total_chars for column in stats.columns)
        stored = sum(
            column.effective_stored_chars for column in stats.columns
        )
        total_expanded += expanded
        total_stored += stored
        relations.append(
            {
                "relation": name,
                "rows": stats.rows,
                "expanded_chars": expanded,
                "stored_chars": stored,
            }
        )
    return {
        "relations": relations,
        "expanded_chars": total_expanded,
        "stored_chars": total_stored,
        "compression_ratio": (
            round(total_expanded / total_stored, 2) if total_stored else 1.0
        ),
    }


@pytest.fixture(scope="session")
def ab_database() -> Database:
    """A small two-relation database over {a, b}."""
    return generators.example_database(AB, seed=1, size=6, max_length=4)


@pytest.fixture(scope="session")
def dna_database() -> Database:
    """A DNA-alphabet database with planted motifs."""
    fragments = generators.with_planted_motif(
        DNA, motif="gcgc", count=12, max_length=5, seed=2
    )
    pairs = generators.manifold_strings(
        DNA, count=6, max_base_length=2, max_repeats=3, seed=3
    )
    return Database(
        DNA,
        {"R1": [tuple(p) for p in pairs], "R2": [(s,) for s in fragments]},
    )
