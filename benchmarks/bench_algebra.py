"""Experiments T41/T42: the calculus ⇄ algebra translations.

Times both translation directions and checks the translated artefacts
produce the same answers — the executable content of Theorems 4.1 and
4.2.
"""

import pytest

from repro.algebra.evaluate import evaluate_expression
from repro.algebra.expressions import Project, Rel, Select
from repro.algebra.translate import (
    algebra_to_calculus,
    calculus_to_algebra,
    partition_machine,
)
from repro.core import shorthands as sh
from repro.core.alphabet import AB
from repro.core.semantics import evaluate_naive
from repro.core.syntax import And, exists, lift, rel
from repro.fsa.compile import compile_string_formula


@pytest.fixture(scope="module")
def formula():
    return exists(
        "y", And(rel("R1", "x", "y"), lift(sh.prefix_of("y", "x")))
    )


def test_calculus_to_algebra_translation(benchmark, formula):
    expression = benchmark(calculus_to_algebra, formula, ("x",), AB)
    assert expression.arity == 1


def test_translated_expression_agrees(ab_database, formula):
    expression = calculus_to_algebra(formula, ("x",), AB)
    expected = evaluate_naive(
        formula, ("x",), ab_database, tuple(AB.strings(4))
    )
    got = evaluate_expression(expression, ab_database, 4)
    assert got == expected


def test_algebra_to_calculus_translation(benchmark):
    machine = compile_string_formula(sh.equals("x", "y"), AB).fsa
    expression = Project(Select(Rel("R1", 2), machine), (0,))
    back = benchmark(algebra_to_calculus, expression)
    from repro.core.syntax import free_variables

    assert free_variables(back) == {"x1"}


def test_partition_machine_construction(benchmark):
    machine = benchmark(partition_machine, 6, [[0, 3], [1, 4], [2, 5]], AB)
    # factorized enumeration: far below (|Σ|+2)^6 transitions
    assert machine.size < (len(AB.symbols) + 2) ** 6


def test_partition_machine_vs_compiled_formula(ab_database):
    """The direct machine equals the compiled partition formula."""
    from repro.algebra.translate import partition_formula
    from repro.fsa.simulate import accepts

    width, parts = 4, [[0, 2], [1, 3]]
    direct = partition_machine(width, parts, AB)
    compiled = compile_string_formula(
        partition_formula(width, parts),
        AB,
        variables=tuple(f"c{i}" for i in range(width)),
    ).fsa
    from itertools import product

    pool = list(AB.strings(2))
    for row in product(pool, repeat=width):
        assert accepts(direct, row) == accepts(compiled, row), row
