"""Experiment T65: the polynomial hierarchy through QBF machines.

Benchmarks the Theorem 6.5 evaluation pipeline against the recursive
QBF oracle at hierarchy levels 1-3, and times the construction of the
machine family per level.  Shape claims: both deciders always agree,
and the machine-family construction grows with the level (the ``M^k``
arity grows) while staying practical for the small levels the
polynomial hierarchy is about.
"""

import pytest

from repro.expressive.qbf import (
    QBF,
    build_matrix_machine,
    encode_qbf,
    evaluate_qbf_via_machines,
    machines_for_level,
)

INSTANCES = {
    1: QBF(
        (("E", ("x", "y")),),
        (((True, "x"), (False, "y")), ((False, "x"), (True, "y"))),
    ),
    2: QBF(
        (("A", ("x",)), ("E", ("y",))),
        (((True, "x"), (True, "y")), ((False, "x"), (False, "y"))),
    ),
    3: QBF(
        (("E", ("x",)), ("A", ("y",)), ("E", ("z",))),
        (
            ((True, "x"), (True, "y"), (True, "z")),
            ((False, "y"), (False, "z")),
        ),
    ),
}


@pytest.mark.parametrize("level", [1, 2, 3])
def test_machines_agree_with_oracle(level):
    qbf = INSTANCES[level]
    assert evaluate_qbf_via_machines(qbf) == qbf.evaluate()


@pytest.mark.parametrize("level", [1, 2])
def test_evaluation_timing(benchmark, level):
    qbf = INSTANCES[level]
    result = benchmark.pedantic(
        evaluate_qbf_via_machines, args=(qbf,), rounds=3, iterations=1
    )
    assert result == qbf.evaluate()


@pytest.mark.parametrize("level", [1, 2, 3])
def test_machine_family_construction(benchmark, level):
    family = benchmark.pedantic(
        machines_for_level,
        args=(level, "E"),
        rounds=3,
        iterations=1,
    )
    assert family.interleaver.arity == 2 + level


def test_matrix_machine_size_by_level():
    sizes = [
        build_matrix_machine(level, "E").size for level in (1, 2, 3)
    ]
    # The prefix checker grows linearly with the level.
    assert sizes[0] < sizes[1] < sizes[2]
