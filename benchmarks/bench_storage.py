"""N-gram index storage vs. the in-memory scan on a 100k-row relation.

One selection workload — a planted ``gcgcgc`` motif in 100 000 random
DNA fragments, queried through the planner engine — runs over both
storage backends.  The memory backend scans and kernel-filters every
row; the n-gram backend answers the pushed-down mandatory-factor probe
first, so the kernel only sees candidate rows.  The equivalence
assertion and the ≥3× speedup assertion make this file the harness row
for the storage-pushdown acceptance criterion; the measured numbers
are written to ``BENCH_storage.json`` at the repo root.

Run directly (``PYTHONPATH=src python benchmarks/bench_storage.py``)
for a quick report, or through pytest-benchmark for calibrated
timings.
"""

import json
import time
from pathlib import Path

import pytest

from repro.core.alphabet import DNA
from repro.core.database import Database
from repro.core.query import Query
from repro.core.syntax import (
    And,
    IsChar,
    SStar,
    WTrue,
    atom,
    concat,
    left,
    lift,
    rel,
)
from repro.engine import QueryEngine
from repro.storage import NGramIndexStorage, storage_factory
from repro.workloads.generators import with_planted_motif

#: The acceptance-criterion floor: indexed ≥3× over the full scan.
SPEEDUP_FLOOR = 3.0

ROWS = 100_000
MOTIF = "gcgcgc"
MAX_LENGTH = 24
#: Truncation bound covering every row (fragment + planted motif).
CAP = MAX_LENGTH + len(MOTIF) + 1

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_storage.json"


def _contains_motif():
    """``MOTIF`` occurs somewhere in ``y`` (skip a prefix, then match)."""
    return concat(
        SStar(atom(left("y"), WTrue())),
        *[atom(left("y"), IsChar("y", char)) for char in MOTIF],
    )


_QUERY = Query(("y",), And(rel("R2", "y"), lift(_contains_motif())), DNA)

_STATE: dict = {}


def _databases():
    """The memory- and ngram-backed copies of the 100k-row relation."""
    if not _STATE:
        singles = with_planted_motif(
            DNA, MOTIF, count=ROWS, max_length=MAX_LENGTH,
            fraction=0.01, seed=11,
        )
        plain = Database(DNA, {"R2": [(s,) for s in singles]})
        started = time.perf_counter()
        indexed = plain.with_storage(storage_factory("ngram"))
        _STATE["build_seconds"] = time.perf_counter() - started
        _STATE["plain"] = plain
        _STATE["indexed"] = indexed
    return _STATE["plain"], _STATE["indexed"]


def _run(db):
    """One cold-session planner evaluation (no shared compiled caches)."""
    return QueryEngine().evaluate(_QUERY, db, length=CAP, engine="planner")


def _best_of(runs, fn):
    best = float("inf")
    for _ in range(runs):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def test_storage_backends_agree():
    """Byte-identical answers on the 100k-row motif workload."""
    plain, indexed = _databases()
    assert isinstance(indexed.storage("R2"), NGramIndexStorage)
    answers = _run(plain)
    assert _run(indexed) == answers
    assert answers  # the planted fraction guarantees matches
    assert all(MOTIF in (value,)[0] for (value,) in answers)


def test_memory_scan(benchmark):
    plain, _ = _databases()
    answers = benchmark(lambda: _run(plain))
    assert answers


def test_ngram_probe(benchmark):
    _, indexed = _databases()
    answers = benchmark(lambda: _run(indexed))
    assert answers


def test_storage_speedup_floor():
    """Acceptance criterion: the indexed backend is ≥3× faster than the
    full scan on the 100k-row workload; results go to BENCH_storage.json."""
    plain, indexed = _databases()
    answers = _run(plain)
    assert _run(indexed) == answers
    memory = _best_of(2, lambda: _run(plain))
    ngram = _best_of(3, lambda: _run(indexed))
    RESULTS_PATH.write_text(
        json.dumps(
            {
                "workload": f"planted-{MOTIF}-motif",
                "rows": ROWS,
                "answers": len(answers),
                "index_build_seconds": round(_STATE["build_seconds"], 4),
                "memory_seconds": round(memory, 4),
                "ngram_seconds": round(ngram, 4),
                "speedup": round(memory / ngram, 2),
                "floor": SPEEDUP_FLOOR,
            },
            indent=2,
        )
        + "\n"
    )
    assert memory >= SPEEDUP_FLOOR * ngram, (
        f"indexed storage ({ngram * 1e3:.1f} ms) not ≥{SPEEDUP_FLOOR}× "
        f"faster than the scan ({memory * 1e3:.1f} ms)"
    )


def main() -> None:
    plain, indexed = _databases()
    answers = _run(plain)
    assert _run(indexed) == answers
    memory = _best_of(2, lambda: _run(plain))
    ngram = _best_of(3, lambda: _run(indexed))
    print(
        f"rows: {ROWS}   answers: {len(answers)}   "
        f"index build: {_STATE['build_seconds'] * 1e3:8.1f} ms"
    )
    print(
        f"memory: {memory * 1e3:8.1f} ms   ngram: {ngram * 1e3:8.1f} ms   "
        f"speedup: {memory / ngram:5.1f}x"
    )


if __name__ == "__main__":
    main()
