"""Experiment X1: Example 8 vs the Wagner-Fischer baseline.

The paper's edit-distance formula compiles to a machine whose
acceptance check competes with the classical dynamic program.  Shape
claim: both are polynomial; the DP wins on raw speed (it is the
specialized algorithm), while the formula wins on composability —
and both always agree.
"""

import pytest

from repro.core import shorthands as sh
from repro.core.alphabet import DNA
from repro.fsa.compile import compile_string_formula
from repro.fsa.simulate import accepts
from repro.workloads import generators, oracles

BUDGET = 2


@pytest.fixture(scope="module")
def machine():
    return compile_string_formula(
        sh.edit_distance_at_most("x", "y", BUDGET), DNA
    )


@pytest.fixture(scope="module")
def workload():
    reference = "acgtacgt"
    candidates = generators.near_duplicates(
        DNA, reference, count=10, max_edits=4, seed=5
    )
    return reference, candidates


def test_agreement(machine, workload):
    reference, candidates = workload
    for candidate in candidates:
        values = {"x": reference, "y": candidate}
        ordered = tuple(values[v] for v in machine.variables)
        assert accepts(machine.fsa, ordered) == oracles.edit_distance_at_most(
            reference, candidate, BUDGET
        ), candidate


def test_formula_machine(benchmark, machine, workload):
    reference, candidates = workload

    def run():
        return sum(
            1
            for candidate in candidates
            if accepts(machine.fsa, (reference, candidate))
        )

    hits = benchmark(run)
    assert hits >= 1


def test_wagner_fischer_baseline(benchmark, workload):
    reference, candidates = workload

    def run():
        return sum(
            1
            for candidate in candidates
            if oracles.edit_distance(reference, candidate) <= BUDGET
        )

    hits = benchmark(run)
    assert hits >= 1


@pytest.mark.parametrize("length", [4, 8, 16])
def test_machine_scaling(benchmark, machine, length):
    word = ("acgt" * ((length + 3) // 4))[:length]
    assert benchmark(accepts, machine.fsa, (word, word))
