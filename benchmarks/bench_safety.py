"""Experiment X3: safety-driven evaluation ablation.

Compares evaluating a safe generating query with (a) the certified
limit function choosing the truncation automatically and the planner
generating strings, versus (b) brute-force truncated evaluation at the
same certified bound.  Shape claim: the certified bound is sound but
loose; only generation-based evaluation stays practical under it —
the reason Section 4 pairs the algebra with the limitation analysis.
"""

import pytest

from repro.core import shorthands as sh
from repro.core.alphabet import AB
from repro.core.database import Database
from repro.core.query import Query
from repro.core.syntax import And, exists, lift, rel
from repro.safety.domain_independence import limit_function


@pytest.fixture(scope="module")
def database():
    return Database(AB, {"R": [("abab",), ("aab",)]})


@pytest.fixture(scope="module")
def safe_query():
    return Query(
        ("y",),
        exists("x", And(rel("R", "x"), lift(sh.manifold("x", "y")))),
        AB,
    )


def test_certified_bound_is_loose_but_sound(database, safe_query):
    report = limit_function(safe_query.formula, AB)
    bound = report.bound(database)
    # Sound: every answer string fits far below the certified bound.
    answers = safe_query.evaluate(database)
    assert all(len(y) <= bound for (y,) in answers)
    # Loose: the bound is far above the longest actual answer.
    longest = max(len(y) for (y,) in answers)
    assert bound > 10 * longest


def test_limit_function_derivation(benchmark, safe_query):
    report = benchmark(limit_function, safe_query.formula, AB)
    assert report is not None


def test_planner_under_certified_bound(benchmark, database, safe_query):
    result = benchmark.pedantic(
        safe_query.evaluate, args=(database,), rounds=3, iterations=1
    )
    assert ("ab",) in result


def test_naive_under_small_explicit_bound(benchmark, database, safe_query):
    # The naive engine is only usable with a hand-tightened bound —
    # the ablation's other arm.
    result = benchmark.pedantic(
        safe_query.evaluate,
        args=(database,),
        kwargs={"length": 4, "engine": "naive"},
        rounds=2,
        iterations=1,
    )
    assert ("ab",) in result
