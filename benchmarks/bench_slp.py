"""Kernel v3 on grammars vs. kernel v2 on expanded strings.

The SLP acceptance criterion (ISSUE, tentpole): on a planted-motif
workload of highly compressible strings the grammar-path kernel v3
answers the *same* membership questions ≥5× faster than the v2 scan
at **equal expanded length** — v2 reads every character of the
expanded strings, v3 composes per-rule summaries in
``O(rules · states)``.  A second, scale tier plants the motif in
strings whose expanded length is ≥100× the uncompressed budget: only
v3 finishes there (v2 would have to materialize hundreds of millions
of characters), recorded in ``BENCH_slp.json`` alongside the
expanded-vs-stored byte accounting from ``benchmarks/conftest.py``.

Run directly (``PYTHONPATH=src python benchmarks/bench_slp.py``) for a
quick report, or through pytest-benchmark for calibrated timings.
"""

import json
import time
from pathlib import Path

import pytest

from repro.core.alphabet import DNA, LEFT_END, RIGHT_END
from repro.fsa.machine import make_fsa
from repro.slp import compress, concat, literal, repeat, slp_kernel_for
from repro.storage import SLPStorage

try:
    from benchmarks.conftest import byte_accounting
except ImportError:  # direct script runs from inside benchmarks/
    from conftest import byte_accounting

#: The acceptance-criterion floor: v3 ≥5× over v2 at equal expanded
#: length on the planted-motif workload.
V3_SPEEDUP_FLOOR = 5.0

#: The largest expanded size the uncompressed tier is allowed to
#: materialize; the scale tier plants motifs in strings ≥100× this.
UNCOMPRESSED_BUDGET = 1 << 21

#: Scale-tier multiplier over the budget (the "only v3 finishes" bar).
SCALE_FACTOR = 100

#: Where the v2-vs-v3 trajectory is recorded for the ROADMAP.
RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_slp.json"

#: The filler block scale strings repeat; the motif never occurs in
#: any repetition of it ("tt" appears nowhere in block²).
BLOCK = "acgtacgt"
MOTIF = "gattaca"


def _motif_machine():
    """A nondeterministic unidirectional matcher for ``MOTIF``."""
    transitions = [("s", (LEFT_END,), "scan", (+1,))]
    for char in DNA:
        transitions.append(("scan", (char,), "scan", (+1,)))
    previous = "scan"
    for position, char in enumerate(MOTIF):
        state = f"m{position + 1}"
        transitions.append((previous, (char,), state, (+1,)))
        previous = state
    for char in DNA:
        transitions.append((previous, (char,), previous, (+1,)))
    transitions.append((previous, (RIGHT_END,), "f", (0,)))
    return make_fsa(1, DNA, "s", ["f"], transitions)


def _motif_workload():
    """64 compressible rows, ~16–32k expanded chars, half with motif.

    Returns ``(grammar_rows, expanded_rows, expected)``: the same
    strings as SLP cells and as plain strings (equal expanded length
    by construction), plus the expected verdicts.
    """
    block = compress(BLOCK)
    motif = literal(MOTIF)
    grammar_rows = []
    expected = []
    for index in range(64):
        half = 1024 + 64 * index  # 16k–32k expanded chars per row
        filler = repeat(block, half)
        if index % 2:
            cell = concat(filler, concat(motif, filler))
            expected.append(True)
        else:
            cell = concat(filler, filler)
            expected.append(False)
        grammar_rows.append((cell,))
    expanded_rows = [(cell.expand(),) for (cell,) in grammar_rows]
    return grammar_rows, expanded_rows, tuple(expected)


def _scale_workload():
    """Two rows whose expansion is ≥100× the uncompressed budget."""
    reps = (SCALE_FACTOR * UNCOMPRESSED_BUDGET) // len(BLOCK) + 1
    filler = repeat(compress(BLOCK), reps)
    planted = concat(filler, concat(literal(MOTIF), filler))
    return [(planted,), (concat(filler, filler),)], (True, False)


def _best_of(runs, fn):
    best = float("inf")
    for _ in range(runs):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _run_v3_cold(kernel, rows):
    # Clearing the memo each run times the full O(rules · states)
    # summary build, not a cache hit — the honest per-batch cost.
    kernel._summaries.clear()
    return kernel.accepts_batch(rows)


def test_v3_motif_workload(benchmark):
    fsa = _motif_machine()
    kernel = slp_kernel_for(fsa)
    grammar_rows, _, expected = _motif_workload()
    verdicts = benchmark(lambda: _run_v3_cold(kernel, grammar_rows))
    assert verdicts == expected


def test_v2_motif_workload(benchmark):
    fsa = _motif_machine()
    kernel = slp_kernel_for(fsa)  # same table as v2; scan path
    _, expanded_rows, expected = _motif_workload()
    verdicts = benchmark(lambda: kernel.accepts_batch(expanded_rows))
    assert verdicts == expected


def _measurements():
    """The motif-tier timings and the scale-tier record."""
    fsa = _motif_machine()
    kernel = slp_kernel_for(fsa)
    assert kernel is not None, "motif machine left the v2/v3 fragment"
    grammar_rows, expanded_rows, expected = _motif_workload()
    assert kernel.accepts_batch(expanded_rows) == expected
    assert _run_v3_cold(kernel, grammar_rows) == expected
    v2_seconds = _best_of(3, lambda: kernel.accepts_batch(expanded_rows))
    v3_seconds = _best_of(3, lambda: _run_v3_cold(kernel, grammar_rows))
    expanded_chars = sum(len(row[0]) for row in expanded_rows)
    motif_tier = {
        "rows": len(grammar_rows),
        "expanded_chars": expanded_chars,
        "v2_seconds": round(v2_seconds, 4),
        "v3_seconds": round(v3_seconds, 4),
        "speedup": round(v2_seconds / v3_seconds, 2),
        "bytes": byte_accounting(
            [("motif", SLPStorage.from_cells(grammar_rows))]
        ),
    }
    scale_rows, scale_expected = _scale_workload()
    scale_chars = sum(row[0].expanded_length() for row in scale_rows)
    assert scale_chars >= SCALE_FACTOR * UNCOMPRESSED_BUDGET
    started = time.perf_counter()
    scale_verdicts = _run_v3_cold(kernel, scale_rows)
    scale_seconds = time.perf_counter() - started
    assert scale_verdicts == scale_expected
    scale_tier = {
        "rows": len(scale_rows),
        "expanded_chars": scale_chars,
        "budget_chars": UNCOMPRESSED_BUDGET,
        "scale_factor": SCALE_FACTOR,
        "v2_seconds": None,  # not attempted: expansion exceeds budget
        "v3_seconds": round(scale_seconds, 4),
        "bytes": byte_accounting(
            [("scale", SLPStorage.from_cells(scale_rows))]
        ),
    }
    return motif_tier, scale_tier


def test_kernel_v3_speedup_floor():
    """SLP acceptance criterion: kernel v3 answers the planted-motif
    workload ≥5× faster than the v2 scan at equal expanded length, and
    alone finishes the ≥100×-budget scale tier; both trajectories are
    recorded in ``BENCH_slp.json``."""
    motif_tier, scale_tier = _measurements()
    RESULTS_PATH.write_text(
        json.dumps(
            {
                "floor": V3_SPEEDUP_FLOOR,
                "motif": motif_tier,
                "scale": scale_tier,
            },
            indent=2,
        )
        + "\n"
    )
    assert motif_tier["v2_seconds"] >= (
        V3_SPEEDUP_FLOOR * motif_tier["v3_seconds"]
    ), (
        f"motif workload: v3 ({motif_tier['v3_seconds'] * 1e3:.2f} ms) "
        f"not ≥{V3_SPEEDUP_FLOOR}× faster than v2 "
        f"({motif_tier['v2_seconds'] * 1e3:.2f} ms) at "
        f"{motif_tier['expanded_chars']} expanded chars"
    )
    assert scale_tier["expanded_chars"] >= SCALE_FACTOR * UNCOMPRESSED_BUDGET


def main() -> None:
    motif_tier, scale_tier = _measurements()
    print(
        f"motif      v2: {motif_tier['v2_seconds'] * 1e3:8.2f} ms   "
        f"v3: {motif_tier['v3_seconds'] * 1e3:8.2f} ms   "
        f"speedup: {motif_tier['speedup']:6.1f}x   "
        f"({motif_tier['expanded_chars']} chars expanded, "
        f"{motif_tier['bytes']['stored_chars']} rules stored)"
    )
    print(
        f"scale      v2: not attempted   "
        f"v3: {scale_tier['v3_seconds'] * 1e3:8.2f} ms   "
        f"({scale_tier['expanded_chars']} chars expanded, "
        f"{scale_tier['bytes']['stored_chars']} rules stored)"
    )


if __name__ == "__main__":
    main()
