"""Experiment T61: the regular-language equivalence (Theorem 6.1).

Benchmarks the three routes for deciding a regular property —
our Thompson NFA, the stdlib ``re`` engine, and the alignment calculus
machine obtained from the regex — and checks all three agree.  The
shape claim: all routes decide the same language; the calculus adds a
constant-factor overhead, not an asymptotic one.
"""

import re as stdlib_re

import pytest

from repro.core.alphabet import AB
from repro.expressive.regular import (
    one_tape_to_nfa,
    parse_regex,
    regex_to_formula,
    regex_to_nfa,
)
from repro.fsa.compile import compile_string_formula
from repro.fsa.simulate import accepts

PATTERN = "(a|b)*abb(a|b)*"
WORDS = ["ab" * 6 + "abb", "ba" * 8, "abb", "b" * 14]


@pytest.fixture(scope="module")
def engines():
    regex = parse_regex(PATTERN)
    nfa = regex_to_nfa(regex)
    compiled = compile_string_formula(regex_to_formula(regex, "x"), AB)
    back = one_tape_to_nfa(compiled.fsa)
    std = stdlib_re.compile(f"(?:{PATTERN})$")
    return nfa, compiled.fsa, back, std


def test_all_routes_agree(engines):
    nfa, fsa, back, std = engines
    for word in WORDS:
        expected = bool(std.match(word))
        assert nfa.matches(word) == expected
        assert accepts(fsa, (word,)) == expected
        assert back.matches(word) == expected


def test_thompson_nfa(benchmark, engines):
    nfa, _, _, _ = engines
    assert benchmark(nfa.matches, WORDS[0])


def test_calculus_machine(benchmark, engines):
    _, fsa, _, _ = engines
    assert benchmark(accepts, fsa, (WORDS[0],))


def test_round_trip_nfa(benchmark, engines):
    _, _, back, _ = engines
    assert benchmark(back.matches, WORDS[0])


def test_stdlib_re(benchmark, engines):
    _, _, _, std = engines
    assert benchmark(lambda: bool(std.match(WORDS[0])))
