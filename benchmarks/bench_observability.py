"""Observability overhead: tracing must be ~free when disabled.

The acceptance criterion for the observability layer is that running
the :mod:`benchmarks.bench_parallel` workload with tracing *disabled*
(the default — every instrumentation point hits the ambient
:data:`~repro.observability.NULL_TRACER`) costs at most 5% over the
uninstrumented code.  The uninstrumented code no longer exists to race
against, so the budget is checked from first principles:

* measure the per-call cost of a disabled instrumentation point (an
  ambient-tracer lookup plus a no-op method call);
* run the workload once *traced* to count how many instrumentation
  events it actually fires (every counter increment and two clock
  edges per span);
* assert that ``events × per-call cost`` stays under 5% of the
  untraced workload's wall time.

The hot loops deliberately keep instrumentation out of the inner
iteration — :mod:`repro.fsa.simulate` and :mod:`repro.fsa.generate`
count configurations locally and report one bulk counter per machine
run — which is what keeps the event count (and therefore the disabled
overhead) small relative to the work.

pytest-benchmark rows time the same engine workload untraced vs traced
so regressions in either mode are visible; run the module directly
(``PYTHONPATH=src python benchmarks/bench_observability.py``) for a
quick report.
"""

import time

from repro.core import shorthands as sh
from repro.core.alphabet import DNA
from repro.core.query import Query
from repro.core.syntax import And, lift, rel
from repro.engine import ParallelEngine, QueryEngine
from repro.observability import Tracer, current_tracer

#: Acceptance criterion: disabled instrumentation adds at most this
#: fraction to the parallel benchmark workload.
OVERHEAD_BUDGET = 0.05

#: Domain truncation bound of the workload (mirrors bench_parallel's
#: moderate setting).
BOUND = 4


def _query() -> Query:
    return Query(
        ("x", "y"),
        And(rel("R1", "x", "y"), lift(sh.prefix_of("y", "x"))),
        DNA,
    )


def _run_workload(db, tracer=None):
    session = QueryEngine(tracer=tracer)
    engine = ParallelEngine(workers=1, min_parallel_items=1)
    domain = session.domain_for(DNA, BOUND)
    answers = session.evaluate(_query(), db, domain=domain, engine=engine)
    return session, answers


def _best_of(runs, fn):
    best = float("inf")
    for _ in range(runs):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _disabled_cost_per_event(reps: int = 100_000) -> float:
    """Per-call wall time of one disabled instrumentation point."""

    def instrumented() -> None:
        for _ in range(reps):
            current_tracer().add("bench.noise")

    def baseline() -> None:
        for _ in range(reps):
            pass

    cost = _best_of(3, instrumented) - _best_of(3, baseline)
    return max(cost, 0.0) / reps


def _event_count(session) -> int:
    """Instrumentation events one traced workload run fires."""
    tracer = session.tracer
    counter_events = len(tracer.counters) and sum(
        1 for _ in tracer.counters
    )
    # Each counter name is bumped many times; the faithful count is the
    # number of add() calls, which equals the number of machine runs
    # plus per-span bookkeeping.  Spans cost two clock edges each.
    adds = int(tracer.counters.get("simulate.runs", 0))
    adds += int(tracer.counters.get("generate.machine_runs", 0))
    adds *= 2  # each run reports a runs counter and a bulk-size counter
    adds += counter_events  # remaining one-off counters
    spans = len(tracer.records()) + tracer.dropped_spans
    return adds + 2 * spans


def test_workload_untraced(benchmark, dna_database):
    session, answers = benchmark(lambda: _run_workload(dna_database))
    assert isinstance(answers, frozenset)
    assert session.trace_report().enabled is False


def test_workload_traced(benchmark, dna_database):
    session, answers = benchmark(
        lambda: _run_workload(dna_database, tracer=Tracer())
    )
    assert isinstance(answers, frozenset)
    assert session.trace_report().enabled is True


def test_disabled_overhead_within_budget(dna_database):
    """Acceptance criterion: ≤5% overhead with tracing disabled.

    ``events × per-event disabled cost`` bounds the instrumentation
    tax the workload pays when no tracer is active; it must stay
    within :data:`OVERHEAD_BUDGET` of the untraced wall time.
    """
    per_event = _disabled_cost_per_event()

    traced_session, _ = _run_workload(dna_database, tracer=Tracer())
    events = _event_count(traced_session)
    assert events > 0, "workload fired no instrumentation events"

    untraced = _best_of(3, lambda: _run_workload(dna_database))
    overhead = events * per_event
    assert overhead <= OVERHEAD_BUDGET * untraced, (
        f"disabled instrumentation tax {overhead * 1e3:.2f} ms "
        f"({events} events × {per_event * 1e9:.0f} ns) exceeds "
        f"{OVERHEAD_BUDGET:.0%} of the {untraced * 1e3:.0f} ms workload"
    )


def test_traced_answers_match_untraced(dna_database):
    _, untraced = _run_workload(dna_database)
    _, traced = _run_workload(dna_database, tracer=Tracer())
    assert traced == untraced


def main() -> None:
    from repro.core.database import Database
    from repro.workloads import generators

    fragments = generators.with_planted_motif(
        DNA, motif="gcgc", count=12, max_length=5, seed=2
    )
    pairs = generators.manifold_strings(
        DNA, count=6, max_base_length=2, max_repeats=3, seed=3
    )
    db = Database(
        DNA,
        {"R1": [tuple(p) for p in pairs], "R2": [(s,) for s in fragments]},
    )
    untraced = _best_of(3, lambda: _run_workload(db))
    traced = _best_of(3, lambda: _run_workload(db, tracer=Tracer()))
    per_event = _disabled_cost_per_event()
    session, _ = _run_workload(db, tracer=Tracer())
    events = _event_count(session)
    print(f"untraced:        {untraced * 1e3:8.1f} ms")
    print(f"traced:          {traced * 1e3:8.1f} ms")
    print(f"disabled cost:   {per_event * 1e9:8.0f} ns/event × {events} events")
    print(
        f"disabled tax:    {events * per_event / untraced:8.2%} "
        f"(budget {OVERHEAD_BUDGET:.0%})"
    )


if __name__ == "__main__":
    main()
