"""Experiment Q1-Q12: the paper's twelve example queries.

For each Section 2 example, benchmarks the compiled-machine acceptance
check on representative inputs and asserts the answers match the
classical baseline — the harness row behind EXPERIMENTS.md items
Q1-Q12.
"""

import pytest

from repro.core import shorthands as sh
from repro.core.alphabet import AB, Alphabet
from repro.fsa.compile import compile_string_formula
from repro.fsa.simulate import accepts
from repro.workloads import oracles

GCA = Alphabet("gca")
ABC = Alphabet("abc")


def machine_case(formula, alphabet, values):
    compiled = compile_string_formula(formula, alphabet)
    ordered = tuple(values[v] for v in compiled.variables)
    return compiled.fsa, ordered


CASES = [
    ("q1_constant", sh.constant("x", "abab"), AB,
     {"x": "abab"}, True, lambda v: v["x"] == "abab"),
    ("q2_equality", sh.equals("x", "y"), AB,
     {"x": "abab" * 2, "y": "abab" * 2}, True,
     lambda v: oracles.equals(v["x"], v["y"])),
    ("q3_concatenation", sh.concatenation("x", "y", "z"), AB,
     {"x": "aabb", "y": "aa", "z": "bb"}, True,
     lambda v: oracles.is_concatenation(v["x"], v["y"], v["z"])),
    ("q4_manifold", sh.manifold("x", "y"), AB,
     {"x": "ab" * 4, "y": "ab"}, True,
     lambda v: oracles.is_manifold(v["x"], v["y"])),
    ("q5_shuffle", sh.shuffle("x", "y", "z"), AB,
     {"x": "abab", "y": "ab", "z": "ab"}, True,
     lambda v: oracles.is_shuffle(v["x"], v["y"], v["z"])),
    ("q6_pattern", sh.gc_plus_a_star("y"), GCA,
     {"y": "gcagca"}, True,
     lambda v: oracles.matches_gc_plus_a_star(v["y"])),
    ("q7_occurrence", sh.occurs_in("x", "y"), AB,
     {"x": "ba", "y": "aababab"}, True,
     lambda v: oracles.occurs_in(v["x"], v["y"])),
    ("q8_edit_distance", sh.edit_distance_at_most("x", "y", 2), AB,
     {"x": "abba", "y": "baba"}, True,
     lambda v: oracles.edit_distance_at_most(v["x"], v["y"], 2)),
    ("q9_axbxa", sh.axbxa_string_part("x", "y", "z"), AB,
     {"x": "aabbaba", "y": "ab", "z": "ab"}, True, None),
    ("q10_equal_counts", sh.equal_count_string_parts("x", "y", "z")[0], AB,
     {"x": "abab", "y": "aa", "z": "aa"}, True, None),
    ("q11_anbncn", sh.anbncn_string_part("x", "y"), ABC,
     {"x": "aabbcc", "y": "ab"}, True, None),
    ("q12_copy_translation", sh.copy_translation_string_parts("x", "y", "z")[0],
     AB, {"x": "abba", "y": "ab", "z": "ba"}, True, None),
]


@pytest.mark.parametrize(
    "formula,alphabet,values,expected,oracle",
    [case[1:] for case in CASES],
    ids=[case[0] for case in CASES],
)
def test_query_machines(benchmark, formula, alphabet, values, expected, oracle):
    fsa, ordered = machine_case(formula, alphabet, values)
    result = benchmark(accepts, fsa, ordered)
    assert result is expected
    if oracle is not None:
        assert oracle(values) is expected
