"""Incremental maintenance vs. from-scratch re-evaluation under updates.

One update-then-query loop over a 100k-row DNA relation: each
iteration inserts a handful of fresh rows (some carrying the planted
``gcgcgc`` motif) and re-asks the same selection query.  The warm
session applies the delta through ``apply_delta`` — dependency-scoped
invalidation plus semi-naive maintenance of the materialized answer
restricted to the inserted rows — while the from-scratch baseline
rebuilds the answer with a cold session on the same database version.
Byte-equality is asserted every iteration; the ≥3× speedup assertion
makes this file the harness row for the incremental-evaluation
acceptance criterion, and the measured numbers are written to
``BENCH_incremental.json`` at the repo root.

Run directly (``PYTHONPATH=src python benchmarks/bench_incremental.py``)
for a quick report, or through pytest-benchmark for calibrated
timings.
"""

import json
import random
import time
from pathlib import Path

from repro.core.alphabet import DNA
from repro.core.database import Database
from repro.core.query import Query
from repro.core.syntax import (
    And,
    IsChar,
    SStar,
    WTrue,
    atom,
    concat,
    left,
    lift,
    rel,
)
from repro.delta import Delta
from repro.engine import QueryEngine
from repro.workloads.generators import with_planted_motif

#: The acceptance-criterion floor: incremental ≥3× over from-scratch.
SPEEDUP_FLOOR = 3.0

ROWS = 100_000
MOTIF = "gcgcgc"
MAX_LENGTH = 24
#: Truncation bound covering every row (fragment + planted motif).
CAP = MAX_LENGTH + len(MOTIF) + 1
#: Rows per update; small against ROWS, as in an OLTP trickle.
DELTA_ROWS = 6
ITERATIONS = 3

RESULTS_PATH = (
    Path(__file__).resolve().parent.parent / "BENCH_incremental.json"
)


def _contains_motif():
    """``MOTIF`` occurs somewhere in ``y`` (skip a prefix, then match)."""
    return concat(
        SStar(atom(left("y"), WTrue())),
        *[atom(left("y"), IsChar("y", char)) for char in MOTIF],
    )


_QUERY = Query(("y",), And(rel("R2", "y"), lift(_contains_motif())), DNA)

_STATE: dict = {}


def _base_database():
    if "db" not in _STATE:
        singles = with_planted_motif(
            DNA, MOTIF, count=ROWS, max_length=MAX_LENGTH,
            fraction=0.01, seed=11,
        )
        _STATE["db"] = Database(DNA, {"R2": [(s,) for s in singles]})
    return _STATE["db"]


def _delta(step, rng):
    """A small insert-only delta; one row per batch carries the motif."""
    rows = [
        (
            "".join(rng.choice("acgt") for _ in range(MAX_LENGTH))
            + f"{step:02d}".translate(str.maketrans("0123456789", "acgtacgtac")),
        )
        for _ in range(DELTA_ROWS - 1)
    ]
    rows.append((MOTIF + "".join(rng.choice("acgt") for _ in range(8)),))
    return Delta.of(inserts={"R2": rows})


def _scratch(db):
    """One cold-session planner evaluation (no shared caches)."""
    return QueryEngine().evaluate(_QUERY, db, length=CAP, engine="planner")


def _loop():
    """Run the update-then-query loop; time both paths per iteration.

    Returns ``(incremental_seconds, scratch_seconds, answers)`` summed
    over all iterations, after asserting byte-equality on each one.
    """
    db = _base_database()
    session = QueryEngine()
    # Steady-state warm session: the first materialization is the
    # one-time cost incremental evaluation amortizes away.
    session.evaluate(_QUERY, db, length=CAP, materialize=True)
    rng = random.Random(7)
    incremental = scratch = 0.0
    answers = frozenset()
    for step in range(ITERATIONS):
        delta = _delta(step, rng)
        started = time.perf_counter()
        db = session.apply_delta(db, delta)
        maintained = session.evaluate(
            _QUERY, db, length=CAP, materialize=True
        )
        incremental += time.perf_counter() - started
        started = time.perf_counter()
        answers = _scratch(db)
        scratch += time.perf_counter() - started
        assert maintained == answers, f"divergence at iteration {step}"
    return incremental, scratch, answers


def test_incremental_matches_from_scratch():
    """Byte-identical answers on every iteration of the update loop."""
    incremental, scratch, answers = _results()
    assert answers
    assert incremental > 0 and scratch > 0


def test_update_then_query_step(benchmark):
    """One incremental step: apply a small delta, re-ask the query."""
    db = _base_database()
    session = QueryEngine()
    session.evaluate(_QUERY, db, length=CAP, materialize=True)
    rng = random.Random(13)
    state = {"db": db, "step": 100}

    def step():
        state["step"] += 1
        state["db"] = session.apply_delta(
            state["db"], _delta(state["step"], rng)
        )
        return session.evaluate(
            _QUERY, state["db"], length=CAP, materialize=True
        )

    assert benchmark(step)


def _results():
    if "loop" not in _STATE:
        _STATE["loop"] = _loop()
    return _STATE["loop"]


def test_incremental_speedup_floor():
    """Acceptance criterion: the incremental path is ≥3× faster than
    from-scratch re-evaluation; results go to BENCH_incremental.json."""
    incremental, scratch, answers = _results()
    RESULTS_PATH.write_text(
        json.dumps(
            {
                "workload": f"update-then-query-{MOTIF}-motif",
                "rows": ROWS,
                "delta_rows": DELTA_ROWS,
                "iterations": ITERATIONS,
                "answers": len(answers),
                "incremental_seconds": round(incremental, 4),
                "scratch_seconds": round(scratch, 4),
                "speedup": round(scratch / incremental, 2),
                "floor": SPEEDUP_FLOOR,
            },
            indent=2,
        )
        + "\n"
    )
    assert scratch >= SPEEDUP_FLOOR * incremental, (
        f"incremental path ({incremental * 1e3:.1f} ms) not "
        f"≥{SPEEDUP_FLOOR}× faster than from-scratch "
        f"({scratch * 1e3:.1f} ms)"
    )


def main() -> None:
    incremental, scratch, answers = _results()
    print(
        f"rows: {ROWS}   iterations: {ITERATIONS}   "
        f"delta rows: {DELTA_ROWS}   answers: {len(answers)}"
    )
    print(
        f"incremental: {incremental * 1e3:8.1f} ms   "
        f"scratch: {scratch * 1e3:8.1f} ms   "
        f"speedup: {scratch / incremental:5.1f}x"
    )


if __name__ == "__main__":
    main()
