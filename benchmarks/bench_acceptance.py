"""Experiment T33: acceptance is polynomial (Theorem 3.3).

Benchmarks ``accepts`` for a fixed machine over growing inputs, and
records the configuration-graph size — the quantity Theorem 3.3 bounds
by ``|Q|·Π(|uᵢ|+2)``.  The shape claim: runtime and configuration
count grow polynomially (here: near-linearly for the lock-step
equality machine), not exponentially.
"""

import pytest

from repro.core import shorthands as sh
from repro.core.alphabet import AB
from repro.fsa.compile import compile_string_formula
from repro.fsa.simulate import accepts, reachable_configurations


@pytest.fixture(scope="module")
def equality_machine():
    return compile_string_formula(sh.equals("x", "y"), AB).fsa


@pytest.mark.parametrize("length", [8, 16, 32, 64])
def test_acceptance_scaling(benchmark, equality_machine, length):
    word = "ab" * (length // 2)
    result = benchmark(accepts, equality_machine, (word, word))
    assert result


def test_configuration_graph_grows_linearly(equality_machine):
    """The paper's polynomial bound, measured."""
    counts = []
    for length in (8, 16, 32):
        word = "a" * length
        counts.append(
            len(reachable_configurations(equality_machine, (word, word)))
        )
    # doubling the input roughly doubles the configurations
    assert counts[1] / counts[0] < 3.0
    assert counts[2] / counts[1] < 3.0
    assert counts[2] <= equality_machine.size * (32 + 2) * 2


@pytest.mark.parametrize("length", [4, 8, 16])
def test_two_way_acceptance_scaling(benchmark, length):
    """A bidirectional machine stays polynomial too."""
    fsa = compile_string_formula(sh.manifold("x", "y"), AB).fsa
    word = "ab" * length
    result = benchmark(accepts, fsa, (word, "ab"))
    assert result
