"""Experiments T51/T62: grammar reductions and r.e. membership.

Times the φ_G verification of derivation chains (Theorem 5.1's
construction) and the bounded membership semi-decision of Theorem 6.2,
including the backward Turing machine simulation.
"""

import pytest

from repro.core.semantics import check_string_formula
from repro.expressive.grammars import (
    TMTransition,
    TuringMachine,
    anbn_grammar,
    backward_grammar,
)
from repro.expressive.recursively_enumerable import check_membership
from repro.safety.reductions import derivation_encoding, phi_g


@pytest.fixture(scope="module")
def grammar():
    return anbn_grammar()


@pytest.fixture(scope="module")
def phi(grammar):
    return phi_g(grammar)


@pytest.mark.parametrize("n", [2, 3, 4])
def test_phi_g_verification(benchmark, grammar, phi, n):
    word = "a" * n + "b" * n
    chain = grammar.derivation(word, max_steps=n + 2, max_length=4 * n)
    encoded = derivation_encoding(chain)
    result = benchmark.pedantic(
        check_string_formula,
        args=(phi, {"x1": word, "x2": encoded, "x3": encoded}),
        rounds=2,
        iterations=1,
    )
    assert result


@pytest.mark.parametrize("n", [2, 3])
def test_membership_semi_decision(benchmark, grammar, n):
    word = "a" * n + "b" * n
    witness = benchmark.pedantic(
        check_membership,
        args=(grammar, word),
        kwargs={"max_steps": n + 3},
        rounds=2,
        iterations=1,
    )
    assert witness is not None
    assert witness.steps == n


def test_backward_tm_grammar(benchmark):
    machine = TuringMachine(
        states=frozenset({"q0", "q1"}),
        input_alphabet=frozenset({"a"}),
        tape_alphabet=frozenset({"a", "b", "_"}),
        blank="_",
        start="q0",
        transitions=(TMTransition("q0", "a", "q1", "b", +1),),
    )
    grammar = backward_grammar(machine)
    found = benchmark.pedantic(
        grammar.derives_in,
        args=("aa", 14, 12),
        rounds=2,
        iterations=1,
    )
    assert found
