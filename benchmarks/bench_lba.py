"""Experiment T66: the LBA/PSPACE encoding (Theorem 6.6).

Measures the size of the formula ``φ`` as the input grows — the
theorem claims ``|φ| = O(n · t · |Γ|)`` — and times acceptance
decisions through the encoding against the direct configuration-space
simulation baseline.
"""

import pytest

from repro.expressive.lba import (
    LBA,
    LBATransition,
    formula_size,
    lba_formula,
    verify_acceptance_via_formula,
)


@pytest.fixture(scope="module")
def parity_machine():
    return LBA(
        states=frozenset({"e", "o", "f"}),
        tape_alphabet=frozenset({"a"}),
        start="e",
        accept="f",
        transitions=(
            LBATransition("e", "a", "o", "a", +1),
            LBATransition("o", "a", "e", "a", +1),
            LBATransition("e", ">", "f", ">", 0),
        ),
    )


def test_formula_size_is_linear_in_n(parity_machine):
    sizes = {
        n: formula_size(lba_formula(parity_machine, "a" * n))
        for n in (4, 8, 16, 32)
    }
    # |φ| = O(n · t · |Γ|): doubling n at most ~doubles the size.
    assert sizes[8] < 2.5 * sizes[4]
    assert sizes[16] < 2.5 * sizes[8]
    assert sizes[32] < 2.5 * sizes[16]


@pytest.mark.parametrize("length", [2, 4, 6])
def test_formula_construction_cost(benchmark, parity_machine, length):
    formula = benchmark(lba_formula, parity_machine, "a" * length)
    assert formula_size(formula) > 0


@pytest.mark.parametrize("length", [2, 4])
def test_acceptance_via_formula(benchmark, parity_machine, length):
    word = "a" * length
    result = benchmark.pedantic(
        verify_acceptance_via_formula,
        args=(parity_machine, word),
        rounds=2,
        iterations=1,
    )
    assert result is (length % 2 == 0)


@pytest.mark.parametrize("length", [4, 8, 16])
def test_direct_simulation_baseline(benchmark, parity_machine, length):
    word = "a" * length
    assert benchmark(parity_machine.accepts, word)
