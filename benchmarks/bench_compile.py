"""Experiments T31/T32/F6: compiler and decompiler costs.

Times the Theorem 3.1 compilation of every Section 2 predicate,
records the machine sizes (the Figure 6 reproduction in numbers), and
times a Theorem 3.2 decompilation round trip.
"""

import pytest

from repro.core import shorthands as sh
from repro.core.alphabet import AB
from repro.fsa.compile import _Compiler, compile_string_formula
from repro.fsa.decompile import decompile
from repro.fsa.minimize import bisimulation_quotient

PREDICATES = {
    "equality": sh.equals("x", "y"),
    "concatenation": sh.concatenation("x", "y", "z"),
    "shuffle": sh.shuffle("x", "y", "z"),
    "manifold": sh.manifold("x", "y"),
    "edit_distance_2": sh.edit_distance_at_most("x", "y", 2),
    "occurrence": sh.occurs_in("x", "y"),
}


@pytest.mark.parametrize("name", list(PREDICATES))
def test_compile_cost(benchmark, name):
    from repro.core.syntax import string_variables

    formula = PREDICATES[name]
    variables = tuple(sorted(string_variables(formula)))

    def compile_fresh():
        compiler = _Compiler(variables, AB)
        return compiler.concatenate(
            compiler.initial_guard(), compiler.build(formula)
        )

    fragment = benchmark(compile_fresh)
    assert fragment.final is not None


def test_machine_sizes_are_modest():
    """Figure 6 in numbers: compiled machines stay small."""
    for name, formula in PREDICATES.items():
        fsa = compile_string_formula(formula, AB).fsa
        assert fsa.size < 600, (name, fsa.size)
        assert len(fsa.states) < 120, (name, len(fsa.states))


def test_minimization_shrinks_machines(benchmark):
    fsa = compile_string_formula(sh.manifold("x", "y"), AB).fsa
    smaller = benchmark(bisimulation_quotient, fsa)
    assert len(smaller.states) <= len(fsa.states)


def test_decompile_round_trip(benchmark):
    fsa = compile_string_formula(sh.constant("x", "ab"), AB).fsa
    formula = benchmark(decompile, fsa, ("x",))
    from repro.core.semantics import check_string_formula

    assert check_string_formula(formula, {"x": "ab"})
    assert not check_string_formula(formula, {"x": "ba"})
